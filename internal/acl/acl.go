// Package acl turns accepted tagging rules into access control lists: an
// in-memory filter engine for flow streams, plus router-style text
// rendering (the deployment output of the IXP Scrubber, usable for
// dropping, shaping, monitoring or re-routing, §5).
package acl

import (
	"fmt"
	"net/netip"
	"strings"

	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/tagging"
)

// Action is what a matching entry does with traffic.
type Action string

// Actions supported by the generator.
const (
	ActionDrop    Action = "drop"
	ActionShape   Action = "shape"
	ActionMonitor Action = "monitor"
	ActionReroute Action = "reroute"
)

// Entry is one ACL entry: a tagging rule scoped to an optional target
// prefix (the attacked IP as classified in Step 2).
type Entry struct {
	Rule   tagging.Rule
	Target netip.Prefix // zero value = any destination
	Action Action
}

// Matches reports whether the entry applies to the record.
func (e *Entry) Matches(rec *netflow.Record) bool {
	if e.Target.IsValid() && !e.Target.Contains(rec.DstIP) {
		return false
	}
	return e.Rule.Match(rec)
}

// Filter applies a list of entries to a flow stream.
type Filter struct {
	entries []Entry
	// counters per entry, aligned with entries.
	hits []uint64
}

// NewFilter builds a filter.
func NewFilter(entries []Entry) *Filter {
	return &Filter{entries: entries, hits: make([]uint64, len(entries))}
}

// Entries returns the filter's entries.
func (f *Filter) Entries() []Entry { return f.entries }

// Hits returns per-entry match counters.
func (f *Filter) Hits() []uint64 { return append([]uint64(nil), f.hits...) }

// Apply returns the action of the first matching entry, or "" for no match.
func (f *Filter) Apply(rec *netflow.Record) Action {
	_, a := f.ApplyIndex(rec)
	return a
}

// ApplyIndex returns the index and action of the first matching entry, or
// (-1, "") for no match. The index identifies which entry fired — the
// reference the compiled mitigation fast path is equivalence-tested
// against.
func (f *Filter) ApplyIndex(rec *netflow.Record) (int, Action) {
	for i := range f.entries {
		if f.entries[i].Matches(rec) {
			f.hits[i]++
			return i, f.entries[i].Action
		}
	}
	return -1, ""
}

// ForRules scopes every accepted rule to all destinations.
func ForRules(rules []tagging.Rule, action Action) []Entry {
	out := make([]Entry, 0, len(rules))
	for _, r := range rules {
		if r.Status != tagging.StatusAccept {
			continue
		}
		out = append(out, Entry{Rule: r, Action: action})
	}
	return out
}

// ForTargets scopes every accepted rule to each classified target — the
// per-victim ACLs Step 2 classification produces.
func ForTargets(rules []tagging.Rule, targets []netip.Addr, action Action) []Entry {
	var out []Entry
	for _, t := range targets {
		bits := 32
		if t.Is6() && !t.Is4In6() {
			bits = 128
		}
		p := netip.PrefixFrom(t, bits)
		for _, r := range rules {
			if r.Status != tagging.StatusAccept {
				continue
			}
			out = append(out, Entry{Rule: r, Target: p, Action: action})
		}
	}
	return out
}

// RenderText renders entries as a router-style ACL. The dialect is
// Cisco-flavored but intentionally generic; one line per entry plus a
// remark carrying the rule ID and confidence for auditability.
func RenderText(entries []Entry) string {
	var b strings.Builder
	b.WriteString("! IXP Scrubber generated ACL\n")
	for i, e := range entries {
		fmt.Fprintf(&b, "! rule %s confidence %.3f support %.5f\n", e.Rule.ID, e.Rule.Confidence, e.Rule.Support)
		fmt.Fprintf(&b, "access-list 180 %s %s\n", verb(e.Action), clause(i, &e))
	}
	return b.String()
}

func verb(a Action) string {
	switch a {
	case ActionDrop:
		return "deny"
	default:
		return "permit" // shape/monitor/reroute match-and-mark
	}
}

func clause(seq int, e *Entry) string {
	proto := "ip"
	var srcPort, dstPort, size, frag string
	for _, it := range e.Rule.Antecedent {
		switch it.Field() {
		case tagging.FieldProtocol:
			switch it.Value() {
			case 6:
				proto = "tcp"
			case 17:
				proto = "udp"
			case 1:
				proto = "icmp"
			case 47:
				proto = "gre"
			default:
				proto = fmt.Sprintf("%d", it.Value())
			}
		case tagging.FieldSrcPort:
			if it.Value() != tagging.PortOther {
				srcPort = fmt.Sprintf(" eq %d", it.Value())
			}
		case tagging.FieldDstPort:
			if it.Value() != tagging.PortOther {
				dstPort = fmt.Sprintf(" eq %d", it.Value())
			}
		case tagging.FieldSize:
			size = " ! packet-size " + tagging.SizeBinLabel(it.Value())
		case tagging.FieldFragment:
			frag = " fragments"
		}
	}
	dst := "any"
	if e.Target.IsValid() {
		if e.Target.IsSingleIP() {
			dst = "host " + e.Target.Addr().String()
		} else {
			dst = e.Target.String()
		}
	}
	return fmt.Sprintf("%s any%s %s%s%s%s", proto, srcPort, dst, dstPort, frag, size)
}
