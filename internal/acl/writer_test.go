package acl

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/par"
)

func instantBackoff() *par.Backoff {
	return &par.Backoff{Base: time.Millisecond, Sleep: func(time.Duration) {}}
}

func TestWriterAtomicPublish(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "acl.txt")
	w := &Writer{Backoff: instantBackoff()}
	ctx := context.Background()
	if err := w.Publish(ctx, path, []byte("deny v1\n")); err != nil {
		t.Fatal(err)
	}
	if err := w.Publish(ctx, path, []byte("deny v2\n")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "deny v2\n" {
		t.Fatalf("content = %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
	if w.Writes.Load() != 2 || w.Retries.Load() != 0 {
		t.Fatalf("writes=%d retries=%d", w.Writes.Load(), w.Retries.Load())
	}
}

// flakyFS wraps OSFS and fails the first failWrites WriteFile calls after
// writing partial data — the torn-write fault the atomic protocol exists
// to mask.
type flakyFS struct {
	OSFS
	failWrites  int
	failRenames int
}

func (f *flakyFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	if f.failWrites > 0 {
		f.failWrites--
		_ = os.WriteFile(name, data[:len(data)/2], perm) // torn write hits only the temp file
		return errors.New("scripted disk-full failure")
	}
	return f.OSFS.WriteFile(name, data, perm)
}

func (f *flakyFS) Rename(oldpath, newpath string) error {
	if f.failRenames > 0 {
		f.failRenames--
		return errors.New("scripted rename failure")
	}
	return f.OSFS.Rename(oldpath, newpath)
}

func TestWriterRetriesTornWrites(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "acl.txt")
	w := &Writer{Backoff: instantBackoff()}
	ctx := context.Background()
	if err := w.Publish(ctx, path, []byte("deny v1\n")); err != nil {
		t.Fatal(err)
	}

	w.FS = &flakyFS{failWrites: 2, failRenames: 1}
	if err := w.Publish(ctx, path, []byte("deny v2 complete\n")); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "deny v2 complete\n" {
		t.Fatalf("content after retries = %q", got)
	}
	if w.Retries.Load() != 3 {
		t.Fatalf("Retries = %d, want 3", w.Retries.Load())
	}
	if entries, _ := os.ReadDir(dir); len(entries) != 1 {
		t.Fatalf("torn temp files left behind: %v", entries)
	}
}

func TestWriterGivesUpButKeepsOldFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "acl.txt")
	w := &Writer{Backoff: instantBackoff(), MaxAttempts: 3}
	ctx := context.Background()
	if err := w.Publish(ctx, path, []byte("deny v1\n")); err != nil {
		t.Fatal(err)
	}
	w.FS = &flakyFS{failWrites: 99}
	if err := w.Publish(ctx, path, []byte("deny v2\n")); err == nil {
		t.Fatal("Publish succeeded with a dead disk")
	}
	got, _ := os.ReadFile(path)
	if string(got) != "deny v1\n" {
		t.Fatalf("old ACL corrupted: %q", got)
	}
}

func TestWriterHonorsContext(t *testing.T) {
	dir := t.TempDir()
	w := &Writer{Backoff: instantBackoff()}
	w.FS = &flakyFS{failWrites: 99}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := w.Publish(ctx, filepath.Join(dir, "acl.txt"), []byte("x"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
