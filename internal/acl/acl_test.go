package acl

import (
	"net/netip"
	"strings"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/tagging"
)

func ntpRule(status tagging.Status) tagging.Rule {
	return tagging.Rule{
		ID: "ntp01",
		Antecedent: []tagging.Item{
			tagging.NewItem(tagging.FieldProtocol, 17),
			tagging.NewItem(tagging.FieldSrcPort, 123),
		},
		Confidence: 0.97,
		Support:    0.026,
		Status:     status,
	}
}

func ntpFlow(dst string) netflow.Record {
	return netflow.Record{
		SrcIP: netip.MustParseAddr("192.0.2.1"), DstIP: netip.MustParseAddr(dst),
		SrcPort: 123, DstPort: 40000, Protocol: 17,
		Packets: 1, Bytes: 468,
	}
}

func TestForRulesSkipsUnaccepted(t *testing.T) {
	entries := ForRules([]tagging.Rule{ntpRule(tagging.StatusAccept), ntpRule(tagging.StatusStaging)}, ActionDrop)
	if len(entries) != 1 {
		t.Fatalf("entries = %d, want 1 (staging rule excluded)", len(entries))
	}
}

func TestFilterApply(t *testing.T) {
	f := NewFilter(ForRules([]tagging.Rule{ntpRule(tagging.StatusAccept)}, ActionDrop))
	rec := ntpFlow("198.51.100.7")
	if got := f.Apply(&rec); got != ActionDrop {
		t.Errorf("action = %q", got)
	}
	other := rec
	other.SrcPort = 443
	if got := f.Apply(&other); got != "" {
		t.Errorf("non-matching flow got action %q", got)
	}
	if hits := f.Hits(); hits[0] != 1 {
		t.Errorf("hits = %v", hits)
	}
}

func TestForTargetsScopesToVictim(t *testing.T) {
	victim := netip.MustParseAddr("198.51.100.7")
	entries := ForTargets([]tagging.Rule{ntpRule(tagging.StatusAccept)}, []netip.Addr{victim}, ActionDrop)
	f := NewFilter(entries)
	hit := ntpFlow("198.51.100.7")
	miss := ntpFlow("203.0.113.5") // same signature, different target
	if f.Apply(&hit) != ActionDrop {
		t.Error("victim-scoped entry must drop victim traffic")
	}
	if f.Apply(&miss) != "" {
		t.Error("entry must not apply to other destinations")
	}
}

func TestRenderText(t *testing.T) {
	victim := netip.MustParseAddr("198.51.100.7")
	frag := tagging.Rule{
		ID:         "frag1",
		Antecedent: []tagging.Item{tagging.NewItem(tagging.FieldProtocol, 17), tagging.NewItem(tagging.FieldFragment, 1)},
		Confidence: 0.92, Support: 0.01, Status: tagging.StatusAccept,
	}
	entries := ForTargets([]tagging.Rule{ntpRule(tagging.StatusAccept), frag}, []netip.Addr{victim}, ActionDrop)
	text := RenderText(entries)
	for _, want := range []string{
		"deny udp any eq 123 host 198.51.100.7",
		"fragments",
		"rule ntp01 confidence 0.970",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered ACL missing %q:\n%s", want, text)
		}
	}
	// Monitoring entries render as permit.
	mon := RenderText(ForRules([]tagging.Rule{ntpRule(tagging.StatusAccept)}, ActionMonitor))
	if !strings.Contains(mon, "permit udp any eq 123 any") {
		t.Errorf("monitor ACL:\n%s", mon)
	}
}

func BenchmarkFilterApply(b *testing.B) {
	rules := make([]tagging.Rule, 0, 50)
	for i := 0; i < 50; i++ {
		r := ntpRule(tagging.StatusAccept)
		r.Antecedent = []tagging.Item{
			tagging.NewItem(tagging.FieldProtocol, 17),
			tagging.NewItem(tagging.FieldSrcPort, uint32(i)),
		}
		rules = append(rules, r)
	}
	f := NewFilter(ForRules(rules, ActionDrop))
	rec := ntpFlow("198.51.100.7")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Apply(&rec)
	}
}
