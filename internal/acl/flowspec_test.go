package acl

import (
	"net/netip"
	"strings"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/bgp"
	"github.com/ixp-scrubber/ixpscrubber/internal/tagging"
)

func TestToFlowSpecDrop(t *testing.T) {
	victim := netip.MustParseAddr("198.51.100.7")
	entries := ForTargets([]tagging.Rule{ntpRule(tagging.StatusAccept)}, []netip.Addr{victim}, ActionDrop)
	routes, err := ToFlowSpec(entries, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 1 {
		t.Fatalf("routes = %d", len(routes))
	}
	r := routes[0]
	if r.Action != bgp.Drop {
		t.Errorf("action = %+v", r.Action)
	}
	// The route matches the attack and not other traffic.
	hit := &bgp.FlowKey{
		SrcIP: netip.MustParseAddr("192.0.2.1"), DstIP: victim,
		Protocol: 17, SrcPort: 123, DstPort: 40000, PacketLen: 468,
	}
	if !r.Rule.Matches(hit) {
		t.Fatalf("attack flow must match: %s", r.Rule.String())
	}
	miss := *hit
	miss.DstIP = netip.MustParseAddr("203.0.113.1")
	if r.Rule.Matches(&miss) {
		t.Error("other destinations must not match")
	}
	// Round-trips over the wire.
	buf, err := r.Rule.AppendNLRI(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := bgp.ParseFlowSpecNLRI(buf); err != nil {
		t.Fatal(err)
	}
}

func TestToFlowSpecSizeBin(t *testing.T) {
	rule := tagging.Rule{
		ID: "sz",
		Antecedent: []tagging.Item{
			tagging.NewItem(tagging.FieldProtocol, 17),
			tagging.NewItem(tagging.FieldSize, 4), // (400,500]
		},
		Status: tagging.StatusAccept,
	}
	routes, err := ToFlowSpec(ForRules([]tagging.Rule{rule}, ActionDrop), 0)
	if err != nil {
		t.Fatal(err)
	}
	r := routes[0].Rule
	if !r.Matches(&bgp.FlowKey{Protocol: 17, PacketLen: 468}) {
		t.Error("468B must match (400,500]")
	}
	if r.Matches(&bgp.FlowKey{Protocol: 17, PacketLen: 400}) {
		t.Error("400B must not match the half-open interval")
	}
	if r.Matches(&bgp.FlowKey{Protocol: 17, PacketLen: 501}) {
		t.Error("501B must not match")
	}
}

func TestToFlowSpecShapeAndSkip(t *testing.T) {
	rules := []tagging.Rule{ntpRule(tagging.StatusAccept)}
	shape := ForRules(rules, ActionShape)
	routes, err := ToFlowSpec(shape, 5e6)
	if err != nil {
		t.Fatal(err)
	}
	if routes[0].Action.RateLimitBps != 5e6 {
		t.Errorf("shape rate = %v", routes[0].Action.RateLimitBps)
	}
	monitor := ForRules(rules, ActionMonitor)
	routes, err = ToFlowSpec(monitor, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 0 {
		t.Error("monitor entries must be skipped")
	}
}

func TestToFlowSpecFragmentRule(t *testing.T) {
	rule := tagging.Rule{
		ID: "frag",
		Antecedent: []tagging.Item{
			tagging.NewItem(tagging.FieldProtocol, 17),
			tagging.NewItem(tagging.FieldFragment, 1),
		},
		Status: tagging.StatusAccept,
	}
	routes, err := ToFlowSpec(ForRules([]tagging.Rule{rule}, ActionDrop), 0)
	if err != nil {
		t.Fatal(err)
	}
	r := routes[0].Rule
	if !r.Matches(&bgp.FlowKey{Protocol: 17, Fragment: true}) {
		t.Error("fragment must match")
	}
	if r.Matches(&bgp.FlowKey{Protocol: 17, Fragment: false}) {
		t.Error("non-fragment matched")
	}
	if !strings.Contains(r.String(), "frag") {
		t.Errorf("String = %q", r.String())
	}
}

func TestToFlowSpecSprayedPortsSkipped(t *testing.T) {
	rule := tagging.Rule{
		ID: "spray",
		Antecedent: []tagging.Item{
			tagging.NewItem(tagging.FieldProtocol, 17),
			tagging.NewItem(tagging.FieldSrcPort, 123),
			tagging.NewItem(tagging.FieldDstPort, tagging.PortOther),
		},
		Status: tagging.StatusAccept,
	}
	routes, err := ToFlowSpec(ForRules([]tagging.Rule{rule}, ActionDrop), 0)
	if err != nil {
		t.Fatal(err)
	}
	// The sprayed dst port contributes no component, so any dst port hits.
	r := routes[0].Rule
	if !r.Matches(&bgp.FlowKey{Protocol: 17, SrcPort: 123, DstPort: 61234}) {
		t.Error("sprayed rule must match arbitrary dst ports")
	}
}
