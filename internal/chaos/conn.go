package chaos

import (
	"net"
	"os"
	"sync"
	"time"
)

// chaosAddr is the fixed pseudo-address the conn reports.
var chaosAddr net.Addr = &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 6343}

// PacketConn is an in-memory net.PacketConn the harness feeds datagrams
// into. Unlike a loopback UDP socket it never loses or reorders packets,
// which is what makes fault scenarios bit-reproducible, and it lets the
// script return an exact read error at an exact point in the stream.
//
// Deadline semantics are virtual: while a read deadline is armed and the
// queue is empty, ReadFrom fails with os.ErrDeadlineExceeded immediately
// instead of waiting out the wall-clock interval. The collector only arms
// a deadline while a partial batch is pending, so this turns its
// "flush on idle" path into a deterministic "flush once the injected
// stream is drained" with no real-time sleeps.
type PacketConn struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  [][]byte
	errs   []error // scripted read errors, surfaced once the queue drains
	closed bool
	armed  bool // a read deadline is set
}

// NewPacketConn returns an empty conn ready for injection.
func NewPacketConn() *PacketConn {
	c := &PacketConn{}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Inject appends one datagram (copied) to the read queue.
func (c *PacketConn) Inject(data []byte) {
	c.mu.Lock()
	c.queue = append(c.queue, append([]byte(nil), data...))
	c.mu.Unlock()
	c.cond.Broadcast()
}

// InjectError makes a future ReadFrom return err after all previously
// injected datagrams have been read — the scripted socket failure.
func (c *PacketConn) InjectError(err error) {
	c.mu.Lock()
	c.errs = append(c.errs, err)
	c.mu.Unlock()
	c.cond.Broadcast()
}

// ReadFrom pops the next datagram. Order of precedence with an empty
// queue: closed conn, scripted error, armed deadline, block for more data.
func (c *PacketConn) ReadFrom(p []byte) (int, net.Addr, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed {
			return 0, nil, net.ErrClosed
		}
		if len(c.queue) > 0 {
			d := c.queue[0]
			c.queue = c.queue[1:]
			n := copy(p, d)
			return n, chaosAddr, nil
		}
		if len(c.errs) > 0 {
			err := c.errs[0]
			c.errs = c.errs[1:]
			return 0, nil, err
		}
		if c.armed {
			return 0, nil, os.ErrDeadlineExceeded
		}
		c.cond.Wait()
	}
}

// WriteTo discards the datagram (the collector never writes).
func (c *PacketConn) WriteTo(p []byte, _ net.Addr) (int, error) { return len(p), nil }

// Close marks the conn closed and wakes blocked readers.
func (c *PacketConn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.cond.Broadcast()
	return nil
}

// LocalAddr reports the fixed pseudo-address.
func (c *PacketConn) LocalAddr() net.Addr { return chaosAddr }

// SetDeadline arms or disarms the virtual read deadline.
func (c *PacketConn) SetDeadline(t time.Time) error { return c.SetReadDeadline(t) }

// SetReadDeadline arms the virtual deadline when t is non-zero. The actual
// instant is ignored: an armed deadline on an empty queue expires at once.
func (c *PacketConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.armed = !t.IsZero()
	c.mu.Unlock()
	c.cond.Broadcast()
	return nil
}

// SetWriteDeadline is a no-op (writes never block).
func (c *PacketConn) SetWriteDeadline(time.Time) error { return nil }
