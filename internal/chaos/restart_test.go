package chaos_test

import (
	"context"
	"runtime"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/chaos"
)

// TestCrashRestartConvergesToReference kills the whole stack mid-run —
// pipeline, collector, route server, registry — and restarts it from the
// checkpoint. The restarted run must converge to the uninterrupted
// reference bit-for-bit:
//
//   - the balancer resumes its RNG stream mid-sequence, so post-restart
//     sampling decisions are identical;
//   - the sliding window carries over, so the final round trains on the
//     same records;
//   - the member session replays its desired blackhole state over a fresh
//     BGP session (with historical clock), so labels are identical;
//   - the published ACL text is byte-identical.
func TestCrashRestartConvergesToReference(t *testing.T) {
	testCrashRestart(t, 0, false)
}

// TestCrashRestartSketchMode is the same crash/restart convergence, with
// aggregation running through the bounded-memory sketch path: every round of
// the restarted run must rank, classify and publish bit-identically to the
// uninterrupted sketch-mode reference.
func TestCrashRestartSketchMode(t *testing.T) {
	testCrashRestart(t, 0.05, false)
}

// TestCrashRestartWithDropper crashes with the mitigation fast path live.
// The compiled program rides the checkpoint as DROP1 bytes, so the
// restarted stage drops bit-identically from its first post-restore batch
// — without it, minutes 6-9 would pass records the reference dropped and
// every downstream digest would diverge.
func TestCrashRestartWithDropper(t *testing.T) {
	testCrashRestart(t, 0, true)
}

func testCrashRestart(t *testing.T, sketchBudget float64, dropper bool) {
	if testing.Short() {
		t.Skip("chaos scenarios replay full pipeline runs; skipped in -short")
	}
	baseline := runtime.NumGoroutine()

	base := chaos.Scenario{
		Name:         "restart-reference",
		Minutes:      10,
		TrainAt:      []int64{5, 9},
		Checkpoint:   true,
		SketchBudget: sketchBudget,
		Dropper:      dropper,
	}
	ref, err := chaos.Run(context.Background(), base, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Rounds) != 2 || ref.Rounds[1].Skipped {
		t.Fatalf("reference run did not complete both rounds: %+v", ref.Rounds)
	}
	if dropper && ref.DropperDropped == 0 {
		t.Fatal("dropper reference dropped nothing; fast path not exercised")
	}
	startMin := int64(0)
	for m := range ref.Digests {
		if startMin == 0 || m < startMin {
			startMin = m
		}
	}

	// First half: run through minute 5's round (which checkpoints), then
	// crash — the harness is simply abandoned; nothing is flushed beyond
	// what the checkpoint already persisted.
	crashDir := t.TempDir()
	half1 := base
	half1.Name = "restart-crash"
	half1.Minutes = 6
	half1.TrainAt = []int64{5}
	out1, err := chaos.Run(context.Background(), half1, crashDir)
	if err != nil {
		t.Fatal(err)
	}
	if !out1.CheckpointOK {
		t.Fatal("no checkpoint persisted before the crash")
	}
	if out1.Rounds[0].ACLDigest != ref.Rounds[0].ACLDigest {
		t.Fatalf("pre-crash round diverged from reference: %+v vs %+v",
			out1.Rounds[0], ref.Rounds[0])
	}

	// Second half: a brand-new stack in the same work dir. The pipeline
	// restores the checkpoint; minutes 0-5 replay only their BGP events
	// (with historical timestamps, the way members re-announce active
	// blackholes after a route server restart); traffic resumes at 6.
	half2 := base
	half2.Name = "restart-resume"
	half2.TrainAt = []int64{9}
	half2.SkipTraffic = 6
	half2.Restore = true
	out2, err := chaos.Run(context.Background(), half2, crashDir)
	if err != nil {
		t.Fatal(err)
	}

	if dropper && out2.DropperRules == 0 {
		t.Error("restored checkpoint carried no drop program")
	}
	// The post-restart balanced stream must be bit-identical to the same
	// minutes of the uninterrupted run.
	resumeFrom := startMin + 6
	if got, want := out2.DigestsFrom(resumeFrom), ref.DigestsFrom(resumeFrom); got != want {
		t.Errorf("post-restart stream diverged from reference:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// And the final round — trained on checkpointed window + fresh records
	// — must classify identically and publish the identical ACL.
	finalRef, finalOut := ref.Rounds[1], out2.Rounds[0]
	if finalOut.Skipped ||
		finalOut.Records != finalRef.Records ||
		finalOut.Aggregates != finalRef.Aggregates ||
		finalOut.RulesMined != finalRef.RulesMined ||
		finalOut.ACLDigest != finalRef.ACLDigest {
		t.Errorf("final round diverged after restart:\ngot  %+v\nwant %+v", finalOut, finalRef)
	}
	if out2.ACLFile != ref.ACLFile {
		t.Errorf("published ACL diverged after restart:\ngot:\n%s\nwant:\n%s",
			out2.ACLFile, ref.ACLFile)
	}

	chaos.CheckGoroutines(t, baseline)
	chaos.CheckHeap(t, heapLimit)
}
