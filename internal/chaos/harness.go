package chaos

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/netip"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/acl"
	"github.com/ixp-scrubber/ixpscrubber/internal/bgp"
	"github.com/ixp-scrubber/ixpscrubber/internal/core"
	"github.com/ixp-scrubber/ixpscrubber/internal/features"
	"github.com/ixp-scrubber/ixpscrubber/internal/ixpsim"
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/obs"
	"github.com/ixp-scrubber/ixpscrubber/internal/packet"
	"github.com/ixp-scrubber/ixpscrubber/internal/par"
	modelreg "github.com/ixp-scrubber/ixpscrubber/internal/registry"
	"github.com/ixp-scrubber/ixpscrubber/internal/sflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
)

// samplesPerDatagram fixes both the sFlow export batch and the collector's
// EmitBatch size. Keeping them equal makes batch boundaries a pure
// function of the injected stream — every full datagram flushes exactly
// one batch — which is what makes queue drop decisions under backpressure
// reproducible run over run.
const samplesPerDatagram = 16

// defaultStartMin anchors simulated time (2021-01-01 UTC in unix minutes).
const defaultStartMin = 26_830_080

// Scenario scripts one deterministic chaos run. The zero value of every
// fault field means "healthy"; a scenario turns on the faults it is about.
// All minute fields are relative to the start of the run.
type Scenario struct {
	Name string
	// Profile drives the traffic generator; zero value means DefaultProfile.
	Profile synth.Profile
	// StartMin is the absolute simulated start (unix minutes); 0 means a
	// fixed 2021 epoch.
	StartMin int64
	// Minutes is the number of simulated minutes to run.
	Minutes int64
	// TrainAt lists the minutes (relative) after which a training round runs.
	TrainAt []int64
	// SkipTraffic replays only the BGP events of minutes [0, SkipTraffic):
	// no datagrams are injected and no settling happens. The restart
	// scenario uses it to rebuild member desired state after a full-stack
	// crash, the way real members re-announce active blackholes.
	SkipTraffic int64

	// QueueCap and Drop configure the ingest queue (defaults: 64, Block).
	QueueCap int
	Drop     netflow.DropPolicy

	// DupTruncate follows every valid datagram with a truncated copy;
	// DupGarbage follows it with a non-sFlow garbage datagram. Both must be
	// rejected without disturbing the record stream.
	DupTruncate bool
	DupGarbage  bool
	// SocketErrAt injects a fatal read error into the collector socket
	// before those minutes; the supervisor must replace the socket.
	SocketErrAt []int64
	// KillBGPAt drops the member's BGP session before those minutes; the
	// persistent session must reconnect and replay its desired state.
	KillBGPAt []int64
	// WithdrawStorm announces and immediately withdraws this many decoy
	// prefixes (198.19.0.0/16, outside the traffic ranges) every minute.
	WithdrawStorm int
	// SkewAt re-injects each of those minutes' last datagram with the
	// exporter clock rewound into the previous minute: the records must be
	// counted late and dropped, never retroactively balanced.
	SkewAt []int64
	// StuckFrom..StuckTo (inclusive, active when StuckTo > 0) closes the
	// consumer gate: the queue backs up and exercises its drop policy.
	StuckFrom, StuckTo int64
	// PanicAt arms a one-shot panic in the collector's label hook before
	// those minutes; the first datagram of the minute is sacrificed.
	PanicAt []int64
	// FlakyWrites tears the first two of every three ACL/checkpoint file
	// writes; publishes must retry through and stay atomic.
	FlakyWrites bool

	// Checkpoint persists pipeline state after every round; Restore starts
	// the pipeline from the checkpoint left in the work dir.
	Checkpoint bool
	Restore    bool

	// Registry versions every trained model in <dir>/registry; promotions
	// flip the on-disk champion pointer and what serves is the re-loaded
	// bundle. A registry-backed run must be bit-identical to the in-process
	// reference.
	Registry bool
	// Shadow holds newly trained models as challengers (auto-promotion
	// disabled, so PromoteAt is the only promotion path and the script stays
	// exact).
	Shadow bool
	// PromoteAt promotes the standing challenger before those minutes; a
	// scripted minute with no challenger standing fails the run.
	PromoteAt []int64
	// RegistryOutageAt, when > 0, tears every registry write from that
	// minute on — a persistent model-store outage. Publishes fail for good;
	// the last-good champion must keep serving and ACL output must continue.
	RegistryOutageAt int64

	// SketchBudget, when > 0, runs per-minute aggregation through the
	// bounded-memory sketch path with that relative exactness budget. The
	// sketch path is deterministic, so sketch scenarios replay exactly like
	// exact ones.
	SketchBudget float64

	// Dropper puts the compiled mitigation fast path in front of the
	// ingest queue: every training round compiles the champion's verdicts
	// and hot-swaps them into the match stage, so later minutes' matching
	// records are dropped before the queue. Compilation is deterministic,
	// so dropper scenarios replay exactly — against dropper-enabled
	// references only, since dropping reshapes the training stream.
	Dropper bool
}

// RoundDigest summarizes one training round for comparison.
type RoundDigest struct {
	Minute     int64 // relative minute the round ran after
	Skipped    bool
	Records    int
	Aggregates int
	RulesMined int
	Flagged    []string
	ACLDigest  uint64
	// Lifecycle: which model version served the round, and whether it was
	// freshly promoted or a challenger was shadow-scored alongside it.
	Seq      uint64
	Promoted bool
	Shadowed bool
}

// Outcome is everything a scenario run produced, reduced to comparable
// values. Two runs of the same scenario must produce identical outcomes
// (modulo the Metrics text, which contains wall-clock histograms).
type Outcome struct {
	// Digests maps absolute minute -> chained digest of the records the
	// balancer kept for that minute, in emission order.
	Digests map[int64]uint64
	Kept    uint64
	Rounds  []RoundDigest

	// Pipeline counters.
	Ingested       uint64
	Late           uint64
	DroppedBatches uint64
	DroppedRecords uint64

	// Collector counters.
	Datagrams  uint64
	Samples    uint64
	Records    uint64
	Truncated  uint64
	DecodeErrs uint64
	Panics     uint64

	// Injection accounting (valid datagrams/samples only).
	SentDatagrams uint64
	SentSamples   uint64

	// Fault-path counters.
	Reconnects        uint64
	DialFailures      uint64
	SendFailures      uint64
	CollectorRestarts uint64
	WriterRetries     uint64
	WriterWrites      uint64
	TornWrites        uint64

	// Model-registry accounting (zero when the scenario has no registry).
	RegistryVersions    int    // committed versions visible at run end
	RegistryChampionSeq uint64 // seq the on-disk champion resolves to
	RegistryTorn        uint64 // writes torn by the scripted outage

	// Drop-stage accounting (zero when the scenario has no dropper).
	DropperEvaluated uint64
	DropperDropped   uint64
	DropperSwaps     uint64
	DropperRules     int

	// Blackholes is the registry's distinct-prefix count (marker included).
	Blackholes int
	// ACLFile is the content of the published ACL file at run end.
	ACLFile string
	// CheckpointOK reports a non-empty checkpoint file at run end.
	CheckpointOK bool

	// Metrics is the rendered Prometheus exposition; excluded from Key.
	Metrics string
}

// Key renders every deterministic field; equal keys mean equal runs.
func (o *Outcome) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\nkept=%d ingested=%d late=%d dropB=%d dropR=%d\n",
		o.digestKey(), o.Kept, o.Ingested, o.Late, o.DroppedBatches, o.DroppedRecords)
	fmt.Fprintf(&b, "col: dg=%d sm=%d rec=%d trunc=%d decerr=%d panics=%d restarts=%d\n",
		o.Datagrams, o.Samples, o.Records, o.Truncated, o.DecodeErrs, o.Panics, o.CollectorRestarts)
	fmt.Fprintf(&b, "sent: dg=%d sm=%d\n", o.SentDatagrams, o.SentSamples)
	fmt.Fprintf(&b, "bgp: reconn=%d dialfail=%d sendfail=%d blackholes=%d\n",
		o.Reconnects, o.DialFailures, o.SendFailures, o.Blackholes)
	fmt.Fprintf(&b, "writer: writes=%d retries=%d torn=%d ckpt=%v\n",
		o.WriterWrites, o.WriterRetries, o.TornWrites, o.CheckpointOK)
	fmt.Fprintf(&b, "modelreg: versions=%d champion=%d torn=%d\n",
		o.RegistryVersions, o.RegistryChampionSeq, o.RegistryTorn)
	fmt.Fprintf(&b, "dropper: eval=%d dropped=%d swaps=%d rules=%d\n",
		o.DropperEvaluated, o.DropperDropped, o.DropperSwaps, o.DropperRules)
	b.WriteString(o.ExactKey())
	return b.String()
}

// ExactKey renders only the output-invariant fields — the balanced-stream
// digests, the round results and the published ACL text. Scenarios whose
// faults must be invisible downstream compare this against the fault-free
// reference.
func (o *Outcome) ExactKey() string {
	var b strings.Builder
	b.WriteString(o.digestKey())
	for _, r := range o.Rounds {
		fmt.Fprintf(&b, "round@%d skip=%v rec=%d agg=%d rules=%d flagged=%v acl=%016x seq=%d prom=%v shad=%v\n",
			r.Minute, r.Skipped, r.Records, r.Aggregates, r.RulesMined, r.Flagged, r.ACLDigest,
			r.Seq, r.Promoted, r.Shadowed)
	}
	fmt.Fprintf(&b, "acl-file=%016x\n", TextDigest(o.ACLFile))
	return b.String()
}

// DigestsFrom renders the per-minute digests at or after the absolute
// minute from — what the restart test compares across the crash boundary.
func (o *Outcome) DigestsFrom(from int64) string {
	var b strings.Builder
	mins := make([]int64, 0, len(o.Digests))
	for m := range o.Digests {
		if m >= from {
			mins = append(mins, m)
		}
	}
	sort.Slice(mins, func(i, j int) bool { return mins[i] < mins[j] })
	for _, m := range mins {
		fmt.Fprintf(&b, "%d=%016x\n", m, o.Digests[m])
	}
	return b.String()
}

func (o *Outcome) digestKey() string { return o.DigestsFrom(0) }

// DefaultProfile is the small vantage point chaos scenarios replay: large
// enough that every minute carries blackholed episodes and training rounds
// flag targets, small enough that a scenario runs in well under a second.
func DefaultProfile() synth.Profile {
	p := synth.ProfileUS2()
	p.Name = "IXP-CHAOS"
	p.BenignFlowsPerMin = 96
	p.TargetIPs = 48
	p.BenignSrcIPs = 192
	p.EpisodeRatePerMin = 0.3
	p.EpisodeDurMeanMin = 6
	p.AttackFlowsPerMin = 24
	return p
}

// instantBackoff returns a deterministic backoff that never sleeps wall
// time: retry schedules stay exact while the harness runs at full speed.
func instantBackoff() *par.Backoff {
	return &par.Backoff{Base: time.Millisecond, Sleep: func(time.Duration) {}}
}

// errScriptedSocket is the fault SocketErrAt injects.
var errScriptedSocket = fmt.Errorf("chaos: scripted socket failure")

// Harness wires the full production pipeline to scripted fault injectors.
type Harness struct {
	sc  Scenario
	dir string

	ctx    context.Context
	cancel context.CancelFunc

	clock    Clock
	gate     Gate
	reg      *obs.Registry
	registry *bgp.Registry
	rsDone   chan error
	member   *bgp.Persistent
	pipe     *ixpsim.Pipeline
	fs       *FlakyFS
	models   *modelreg.Registry
	outage   *OutageFS

	collector   *sflow.Collector
	conns       chan *PacketConn
	cur         *PacketConn
	colWG       sync.WaitGroup
	colRestarts atomic.Uint64
	armPanic    atomic.Bool

	digMu   sync.Mutex
	digests map[int64]uint64
	kept    uint64

	// Injection accounting: what the settled pipeline must have absorbed.
	sentDatagrams uint64
	sentSamples   uint64
	expIngest     uint64 // records expected through the balancer, minus known losses
	expBatches    uint64 // batches expected to reach the queue (accepted or dropped)
	ingestBase    uint64 // balancer count carried in from a restored checkpoint
	lastDatagram  []byte
	lastSamples   int

	// Stall parking: when the consumer gate closes, the consumer is still
	// blocked inside the queue's Get. The first datagram of the stall window
	// wakes it; parkPending makes the injector wait until that batch has
	// been taken (BatchesOut advances past parkBase) and the consumer is
	// provably blocked at the gate. From then on the queue accepts exactly
	// its capacity and drops the rest — the drop set is a pure function of
	// injection order, not of goroutine scheduling.
	parkPending bool
	parkBase    uint64
}

// Run executes the scenario inside dir (ACL, checkpoint files) and returns
// its outcome. All scripted faults are injected at exact points of the
// lock-stepped replay, so the outcome is a pure function of the scenario.
func Run(parent context.Context, sc Scenario, dir string) (*Outcome, error) {
	if sc.Minutes <= 0 {
		return nil, fmt.Errorf("chaos: scenario %q has no minutes", sc.Name)
	}
	if sc.Profile.Name == "" {
		sc.Profile = DefaultProfile()
	}
	if sc.StartMin == 0 {
		sc.StartMin = defaultStartMin
	}
	if sc.QueueCap <= 0 {
		sc.QueueCap = 64
	}
	h := &Harness{sc: sc, dir: dir, digests: map[int64]uint64{}}
	h.ctx, h.cancel = context.WithCancel(parent)
	defer h.cancel()
	if err := h.start(); err != nil {
		return nil, err
	}
	out, err := h.replay()
	stopErr := h.stop()
	if err != nil {
		return nil, err
	}
	if stopErr != nil {
		return nil, stopErr
	}
	return out, nil
}

func (h *Harness) aclPath() string        { return filepath.Join(h.dir, "acl.txt") }
func (h *Harness) checkpointPath() string { return filepath.Join(h.dir, "checkpoint.json") }

// start brings up the full stack: route server, pipeline, supervised
// collector, persistent member session.
func (h *Harness) start() error {
	sc := h.sc
	log := slog.New(slog.DiscardHandler)
	h.reg = obs.NewRegistry()
	h.clock.Set(sc.StartMin * 60)

	// Route server feeding the blackhole registry, on real TCP loopback.
	rsLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("chaos: route server listen: %w", err)
	}
	h.registry = bgp.NewRegistry()
	rs := &bgp.RouteServer{
		ASN:      64999,
		RouterID: [4]byte{192, 0, 2, 254},
		Registry: h.registry,
		Clock:    h.clock.Now,
		Log:      log,
	}
	rs.RegisterMetrics(h.reg)
	h.rsDone = make(chan error, 1)
	go func() { h.rsDone <- rs.Serve(h.ctx, rsLn) }()

	// Pipeline: bounded queue -> balancer -> window -> model -> ACL writer.
	ckpt := ""
	if sc.Checkpoint || sc.Restore {
		ckpt = h.checkpointPath()
	}
	if sc.FlakyWrites {
		h.fs = &FlakyFS{Fail: 2, Period: 3}
	}
	if sc.Registry {
		// The model registry shares the run's virtual clock (manifests stamp
		// deterministic times) and, when an outage is scripted, writes through
		// the trippable filesystem.
		var rfs acl.FS
		if sc.RegistryOutageAt > 0 {
			h.outage = &OutageFS{}
			rfs = h.outage
		}
		models, err := modelreg.Open(filepath.Join(h.dir, "registry"), modelreg.Options{
			FS:    rfs,
			Clock: func() time.Time { return time.Unix(h.clock.Now(), 0) },
			Log:   log,
		})
		if err != nil {
			return fmt.Errorf("chaos: model registry: %w", err)
		}
		models.Writer().Backoff = instantBackoff()
		h.models = models
	}
	var coreCfg *core.Config
	if sc.SketchBudget > 0 {
		cc := core.DefaultConfig()
		cc.Sketch = &features.SketchConfig{Budget: sc.SketchBudget}
		coreCfg = &cc
	}
	cfg := ixpsim.PipelineConfig{
		Seed:            sc.Profile.Seed,
		Window:          24 * time.Hour,
		Core:            coreCfg,
		QueueCap:        sc.QueueCap,
		DropPolicy:      sc.Drop,
		MinTrainRecords: 64,
		ACLPath:         h.aclPath(),
		CheckpointPath:  ckpt,
		Clock:           h.clock.Now,
		Metrics:         h.reg,
		Log:             log,
		KeepHook:        h.keepHook,
		ConsumeGate:     h.gate.Wait,
		Registry:        h.models,
		Shadow:          sc.Shadow,
		Drop:            sc.Dropper,
	}
	if sc.Shadow {
		// Scripted promotions only: with auto-promotion disabled, PromoteAt
		// is the single path a challenger takes to champion, so which model
		// serves each round is exact.
		cfg.Promotion = ixpsim.PromotionPolicy{MaxDisagreement: -1}
	}
	if h.fs != nil {
		cfg.FS = h.fs
	}
	h.pipe = ixpsim.NewPipeline(cfg)
	h.pipe.Writer().Backoff = instantBackoff()
	if sc.Restore {
		restored, err := h.pipe.RestoreCheckpoint()
		if err != nil {
			return fmt.Errorf("chaos: restoring checkpoint: %w", err)
		}
		if !restored {
			return fmt.Errorf("chaos: no checkpoint to restore in %s", h.dir)
		}
	}
	// A restored pipeline reports the checkpoint's cumulative ingest count,
	// but this run's queue starts from zero; settle() compares against the
	// delta.
	h.ingestBase = h.pipe.Ingested()
	h.pipe.Start(h.ctx)

	// Supervised collector on the in-memory socket.
	h.collector = &sflow.Collector{
		Label: func(ip netip.Addr, at int64) bool {
			if h.armPanic.CompareAndSwap(true, false) {
				panic("chaos: scripted label fault")
			}
			return h.registry.Covered(ip, at)
		},
		EmitBatch: h.pipe.EmitBatch,
		BatchSize: samplesPerDatagram,
		Clock:     h.clock.Now,
		Log:       log,
	}
	h.collector.RegisterMetrics(h.reg)
	h.conns = make(chan *PacketConn, 4)
	h.cur = NewPacketConn()
	h.conns <- h.cur
	h.colWG.Add(1)
	go func() {
		defer h.colWG.Done()
		for {
			var conn *PacketConn
			select {
			case conn = <-h.conns:
			case <-h.ctx.Done():
				return
			}
			err := h.collector.Listen(h.ctx, conn)
			if err == nil || h.ctx.Err() != nil {
				return
			}
			// The socket died; count the restart and wait for its
			// replacement. The collector keeps its partial batch.
			h.colRestarts.Add(1)
		}
	}()

	// Persistent member session announcing blackholes.
	h.member = &bgp.Persistent{
		Addr:    rsLn.Addr().String(),
		Local:   bgp.Open{ASN: 64501, HoldTime: 90, RouterID: [4]byte{192, 0, 2, 1}},
		Backoff: instantBackoff(),
		Log:     log,
	}
	h.member.RegisterMetrics(h.reg, "as64501")
	return h.member.Connect(h.ctx)
}

func (h *Harness) keepHook(r netflow.Record) {
	m := r.Timestamp / 60
	h.digMu.Lock()
	d, ok := h.digests[m]
	if !ok {
		d = fnvOffset
	}
	h.digests[m] = foldRecord(d, &r)
	h.kept++
	h.digMu.Unlock()
}

func minuteSet(mins []int64) map[int64]bool {
	s := map[int64]bool{}
	for _, m := range mins {
		s[m] = true
	}
	return s
}

var nextHop = netip.MustParseAddr("192.0.2.1")

// replay drives the scenario minute by minute.
func (h *Harness) replay() (*Outcome, error) {
	sc := h.sc
	gen := synth.NewGenerator(sc.Profile)
	var (
		builder     packet.Builder
		seq         uint32
		buf         []synth.Flow
		samples     = make([]sflow.FlowSample, 0, samplesPerDatagram)
		headerArena = make([]byte, 0, samplesPerDatagram*synth.MaxSampledHeader)
		dgBuf       []byte
		exportSeq   uint32
	)
	trainAt := minuteSet(sc.TrainAt)
	promoteAt := minuteSet(sc.PromoteAt)
	socketErrAt := minuteSet(sc.SocketErrAt)
	killAt := minuteSet(sc.KillBGPAt)
	skewAt := minuteSet(sc.SkewAt)
	panicAt := minuteSet(sc.PanicAt)
	stuckActive := sc.StuckTo > 0
	out := &Outcome{}

	for m := int64(0); m < sc.Minutes; m++ {
		if err := h.ctx.Err(); err != nil {
			return nil, err
		}
		abs := sc.StartMin + m
		h.clock.Set(abs * 60)
		buf = gen.GenerateMinute(abs, buf[:0])

		// Scripted lifecycle events for this minute: the model-store outage
		// trips first (persistent — no recovery), then any scripted promotion
		// of the standing challenger.
		if h.outage != nil && m == sc.RegistryOutageAt {
			h.outage.Trip()
		}
		if promoteAt[m] {
			if err := h.pipe.PromoteChallenger(h.ctx); err != nil {
				return nil, fmt.Errorf("chaos: promoting challenger at minute %d: %w", m, err)
			}
		}

		// Consumer gate transitions happen on minute boundaries so the
		// backlog at the stall is an exact, replayable batch sequence.
		if stuckActive && m == sc.StuckFrom {
			h.parkBase = h.pipe.QueueStats().BatchesOut.Load()
			h.parkPending = true
			h.gate.Close()
		}
		if stuckActive && m == sc.StuckTo+1 {
			h.gate.Open()
		}
		stuck := stuckActive && m >= sc.StuckFrom && m <= sc.StuckTo

		// Scripted infrastructure faults for this minute.
		if socketErrAt[m] {
			if err := h.breakSocket(); err != nil {
				return nil, err
			}
		}
		if killAt[m] {
			h.member.Kill()
		}

		// BGP first, so the registry is current before samples are labeled.
		for i := 0; i < sc.WithdrawStorm; i++ {
			p := netip.PrefixFrom(netip.AddrFrom4([4]byte{198, 19, byte(i >> 8), byte(i)}), 32)
			if err := h.member.Announce(h.ctx, p, nextHop); err != nil {
				return nil, fmt.Errorf("chaos: storm announce: %w", err)
			}
			if err := h.member.Withdraw(h.ctx, p); err != nil {
				return nil, fmt.Errorf("chaos: storm withdraw: %w", err)
			}
		}
		for _, ev := range gen.Events() {
			var err error
			if ev.Announce {
				err = h.member.Announce(h.ctx, ev.Prefix, nextHop)
			} else {
				err = h.member.Withdraw(h.ctx, ev.Prefix)
			}
			if err != nil {
				return nil, fmt.Errorf("chaos: bgp event: %w", err)
			}
		}
		if err := h.syncBGP(abs); err != nil {
			return nil, err
		}

		if m < sc.SkipTraffic {
			// Restart recovery: BGP state only, no traffic.
			continue
		}

		if panicAt[m] {
			h.armPanic.Store(true)
			// The panicking datagram loses its whole sample batch: the
			// handler unwinds mid-conversion and the pending batch is
			// discarded, so neither its records nor its batch arrive.
			h.expIngest -= samplesPerDatagram
			h.expBatches--
		}

		// Inject the minute's traffic as wire-format sFlow datagrams.
		samples = samples[:0]
		headerArena = headerArena[:0]
		for i := range buf {
			f := &buf[i]
			frame, err := synth.FrameFor(f, &builder)
			if err != nil {
				return nil, err
			}
			start := len(headerArena)
			headerArena = append(headerArena, frame...)
			seq++
			samples = append(samples, sflow.FlowSample{
				Sequence:     seq,
				SourceID:     1,
				SamplingRate: f.SamplingRate,
				SamplePool:   seq * f.SamplingRate,
				FrameLength:  uint32(f.Bytes / f.Packets),
				Header:       headerArena[start:len(headerArena):len(headerArena)],
			})
			if len(samples) == samplesPerDatagram {
				exportSeq++
				dgBuf, err = h.sendDatagram(dgBuf, exportSeq, samples)
				if err != nil {
					return nil, err
				}
				samples = samples[:0]
				headerArena = headerArena[:0]
			}
		}
		if len(samples) > 0 {
			exportSeq++
			var err error
			dgBuf, err = h.sendDatagram(dgBuf, exportSeq, samples)
			if err != nil {
				return nil, err
			}
		}

		if err := h.settle(!stuck); err != nil {
			return nil, fmt.Errorf("chaos: minute %d: %w", m, err)
		}

		if skewAt[m] {
			if err := h.injectSkewed(abs); err != nil {
				return nil, err
			}
		}

		if trainAt[m] {
			round, err := h.pipe.TrainRound(h.ctx, abs*60)
			if err != nil {
				return nil, fmt.Errorf("chaos: training round at minute %d: %w", m, err)
			}
			rd := RoundDigest{
				Minute:     m,
				Skipped:    round.Skipped,
				Records:    round.Records,
				Aggregates: round.Aggregates,
				RulesMined: round.RulesMined,
				ACLDigest:  TextDigest(round.ACLText),
				Seq:        round.Seq,
				Promoted:   round.Promoted,
				Shadowed:   round.Shadowed,
			}
			for _, t := range round.Flagged {
				rd.Flagged = append(rd.Flagged, t.String())
			}
			out.Rounds = append(out.Rounds, rd)
		}
	}
	h.gate.Open() // never leave the consumer stalled at teardown
	if err := h.settle(true); err != nil {
		return nil, fmt.Errorf("chaos: final settle: %w", err)
	}
	h.collect(out)
	return out, nil
}

// sendDatagram encodes and injects one datagram, plus whatever corrupted
// duplicates the scenario scripts, and updates the settle accounting.
func (h *Harness) sendDatagram(dst []byte, seq uint32, samples []sflow.FlowSample) ([]byte, error) {
	d := sflow.Datagram{
		AgentAddress: netip.MustParseAddr("192.0.2.10"),
		Sequence:     seq,
		Uptime:       seq * 1000,
		Samples:      samples,
	}
	data, err := sflow.Append(dst[:0], &d)
	if err != nil {
		return dst, err
	}
	h.lastDatagram = append(h.lastDatagram[:0], data...)
	h.lastSamples = len(samples)
	h.cur.Inject(data)
	h.sentDatagrams++
	h.sentSamples += uint64(len(samples))
	h.expIngest += uint64(len(samples))
	h.expBatches++
	if h.parkPending {
		// Stall window just opened: wait until the consumer has taken this
		// batch and parked at the gate, so every later Put races nothing.
		qs := h.pipe.QueueStats()
		if err := ixpsim.PollUntil(h.ctx, func() bool {
			return qs.BatchesOut.Load() > h.parkBase
		}); err != nil {
			return dst, fmt.Errorf("chaos: parking stalled consumer: %w", err)
		}
		h.parkPending = false
	}
	if h.sc.DupTruncate {
		h.cur.Inject(data[:len(data)-7])
	}
	if h.sc.DupGarbage {
		garbage := make([]byte, 40)
		for i := range garbage {
			garbage[i] = 0xFF
		}
		h.cur.Inject(garbage)
	}
	return data, nil
}

// injectSkewed replays the minute's last datagram with the exporter clock
// rewound 30 s into the previous minute. The duplicate records are stamped
// into an already-flushed bin: the balancer must count them late and drop
// them, leaving the balanced stream bit-identical to a run without skew.
func (h *Harness) injectSkewed(abs int64) error {
	if h.lastSamples == 0 {
		return fmt.Errorf("chaos: no datagram to skew")
	}
	h.clock.Set((abs-1)*60 + 30)
	h.cur.Inject(h.lastDatagram)
	h.sentDatagrams++
	h.sentSamples += uint64(h.lastSamples)
	h.expIngest += uint64(h.lastSamples)
	h.expBatches++
	err := h.settle(true)
	h.clock.Set(abs * 60)
	return err
}

// breakSocket kills the collector's socket with a scripted read error and
// waits for the supervisor to bring a replacement up.
func (h *Harness) breakSocket() error {
	prev := h.colRestarts.Load()
	old := h.cur
	h.cur = NewPacketConn()
	h.conns <- h.cur
	old.InjectError(errScriptedSocket)
	if err := ixpsim.PollUntil(h.ctx, func() bool { return h.colRestarts.Load() > prev }); err != nil {
		return fmt.Errorf("chaos: waiting for collector restart: %w", err)
	}
	return nil
}

// syncBGP round-trips the marker prefix through the persistent session so
// every prior update has been applied to the registry.
func (h *Harness) syncBGP(abs int64) error {
	return ixpsim.SyncBGPWith(h.ctx, h.registry, abs*60,
		func() error { return h.member.Announce(h.ctx, ixpsim.MarkerPrefix(), nextHop) },
		func() error { return h.member.Withdraw(h.ctx, ixpsim.MarkerPrefix()) })
}

// settle waits for the injected stream to drain: first the collector (all
// samples seen, all batches emitted or dropped), then — unless the
// consumer is scripted as stuck — the queue and balancer. Settling between
// minutes is what pins batch boundaries, and therefore drop decisions and
// RNG draws, to exactly one replayable sequence.
func (h *Harness) settle(waitQueue bool) error {
	if err := ixpsim.PollUntil(h.ctx, func() bool {
		return h.collector.Stats.Samples.Load() >= h.sentSamples
	}); err != nil {
		return fmt.Errorf("settling collector samples: %w", err)
	}
	// The drop stage sits between collector and queue: records it drops
	// never arrive at the balancer, and batches it consumes entirely never
	// reach the queue. Both count toward the injected stream's drain.
	dropStats := func() (records, batches uint64) {
		if d := h.pipe.Dropper(); d != nil {
			st := d.Stats()
			return st.Dropped, st.FullyDroppedBatches
		}
		return 0, 0
	}
	qs := h.pipe.QueueStats()
	if err := ixpsim.PollUntil(h.ctx, func() bool {
		_, dropBatches := dropStats()
		return qs.BatchesIn.Load()+qs.DroppedBatches.Load()+dropBatches >= h.expBatches
	}); err != nil {
		return fmt.Errorf("settling collector batches: %w", err)
	}
	if !waitQueue {
		return nil
	}
	if err := ixpsim.PollUntil(h.ctx, func() bool {
		ing := h.pipe.Ingested() - h.ingestBase
		dropRecords, _ := dropStats()
		return ing+qs.DroppedRecords.Load()+dropRecords >= h.expIngest &&
			qs.BatchesOut.Load() == qs.BatchesIn.Load() &&
			qs.RecordsOut.Load() == ing
	}); err != nil {
		return fmt.Errorf("settling queue: %w", err)
	}
	return nil
}

// collect snapshots every counter into the outcome.
func (h *Harness) collect(out *Outcome) {
	h.digMu.Lock()
	out.Digests = make(map[int64]uint64, len(h.digests))
	for m, d := range h.digests {
		out.Digests[m] = d
	}
	out.Kept = h.kept
	h.digMu.Unlock()

	out.Ingested = h.pipe.Ingested()
	out.Late = h.pipe.BalanceStats().Late
	qs := h.pipe.QueueStats()
	out.DroppedBatches = qs.DroppedBatches.Load()
	out.DroppedRecords = qs.DroppedRecords.Load()

	cs := &h.collector.Stats
	out.Datagrams = cs.Datagrams.Load()
	out.Samples = cs.Samples.Load()
	out.Records = cs.Records.Load()
	out.Truncated = cs.Truncated.Load()
	out.DecodeErrs = cs.DecodeErrs.Load()
	out.Panics = cs.Panics.Load()
	out.SentDatagrams = h.sentDatagrams
	out.SentSamples = h.sentSamples

	out.Reconnects = h.member.Reconnects()
	out.DialFailures = h.member.DialFailures()
	out.SendFailures = h.member.SendFailures()
	out.CollectorRestarts = h.colRestarts.Load()
	w := h.pipe.Writer()
	out.WriterRetries = w.Retries.Load()
	out.WriterWrites = w.Writes.Load()
	if h.fs != nil {
		out.TornWrites = h.fs.Torn.Load()
	}
	if h.outage != nil {
		out.RegistryTorn = h.outage.Torn.Load()
	}
	if h.models != nil {
		out.RegistryVersions = len(h.models.List())
		if m, _, err := h.models.Champion(); err == nil {
			out.RegistryChampionSeq = m.Seq
		}
	}
	if d := h.pipe.Dropper(); d != nil {
		st := d.Stats()
		out.DropperEvaluated = st.Evaluated
		out.DropperDropped = st.Dropped
		out.DropperSwaps = st.Swaps
		out.DropperRules = d.Program().Len()
	}
	out.Blackholes = h.registry.PrefixCount()
	if data, err := os.ReadFile(h.aclPath()); err == nil {
		out.ACLFile = string(data)
	}
	if h.sc.Checkpoint {
		if st, err := os.Stat(h.checkpointPath()); err == nil && st.Size() > 0 {
			out.CheckpointOK = true
		}
	}
	var b strings.Builder
	if err := h.reg.WritePrometheus(&b); err == nil {
		out.Metrics = b.String()
	}
}

// stop tears the stack down and waits for every goroutine.
func (h *Harness) stop() error {
	h.gate.Open()
	h.pipe.Stop()
	err := h.member.Close()
	h.cancel()
	h.colWG.Wait()
	rsErr := <-h.rsDone
	if err != nil && !isBenignClose(err) {
		return fmt.Errorf("chaos: member close: %w", err)
	}
	if rsErr != nil {
		return fmt.Errorf("chaos: route server: %w", rsErr)
	}
	return nil
}

func isBenignClose(err error) bool {
	return err == nil || strings.Contains(err.Error(), "use of closed network connection")
}
