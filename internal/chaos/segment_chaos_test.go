package chaos

// Segment-pipeline chaos: the config-driven pipeline assembler
// (internal/segment) is built programmatically — the same constructor the
// daemon's flag path uses — and its diskbuffer WAL is crashed mid-run. The
// restarted incarnation must replay every spilled record downstream, in
// order and bit-for-bit, with conservation intact end to end.

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/segment"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
)

// segmentSinkCounts is the accessor shape the segment package exports on
// its metrics sink and diskbuffer instances.
type segmentSink interface{ Delivered() uint64 }
type segmentWAL interface {
	Journaled() uint64
	Replayed() uint64
}

func TestSegmentDiskbufferCrashRestart(t *testing.T) {
	baseline := runtime.NumGoroutine()
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	dataset := filepath.Join(dir, "input.flows")

	// A deterministic flow dataset on disk, as a capture job would leave it.
	prof := DefaultProfile()
	prof.Name = "IXP-SEGCHAOS"
	gen := synth.NewGenerator(prof)
	var flows []synth.Flow
	for m := int64(0); m < 4; m++ {
		flows = gen.GenerateMinute(defaultStartMin+m, flows)
	}
	f, err := os.Create(dataset)
	if err != nil {
		t.Fatal(err)
	}
	w := netflow.NewWriter(f)
	for i := range flows {
		if err := w.Write(&flows[i].Record); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	total := uint64(len(flows))

	// Incarnation 1: dataset -> diskbuffer (journals every batch) -> sink.
	// The run ends when the finite input drains; then the process "dies"
	// without Close, leaving the spill on disk.
	run1 := &segment.Config{Name: "chaos-crash", Pipeline: []segment.SegmentConfig{
		{Kind: "netflow", Params: map[string]any{"path": dataset}},
		{Kind: "diskbuffer", Params: map[string]any{"dir": walDir, "sync": true}},
		{Kind: "metrics", Params: map[string]any{"name": "run1"}},
	}}
	p1, err := segment.New(segment.Env{}, run1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := p1.Start(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case <-p1.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("incarnation 1 never drained its dataset")
	}
	wal1 := p1.Instances()[1].(segmentWAL)
	sink1 := p1.Instances()[2].(segmentSink)
	if wal1.Journaled() != total || sink1.Delivered() != total {
		t.Fatalf("incarnation 1: journaled %d, delivered %d, want %d",
			wal1.Journaled(), sink1.Delivered(), total)
	}
	// Crash: no Close. The spill file survives with every record flushed.
	if spills, _ := filepath.Glob(filepath.Join(walDir, "spill-*.wal")); len(spills) != 1 {
		t.Fatalf("crash left %d spill files, want 1", len(spills))
	}

	// Incarnation 2: the diskbuffer now sits at the head — a replay-only
	// input draining the crashed run's spill into a JSONL archive.
	archive := filepath.Join(dir, "recovered.jsonl")
	run2 := &segment.Config{Name: "chaos-restart", Pipeline: []segment.SegmentConfig{
		{Kind: "diskbuffer", Params: map[string]any{"dir": walDir}},
		{Kind: "jsonl", Params: map[string]any{"path": archive}},
		{Kind: "metrics", Params: map[string]any{"name": "run2"}},
	}}
	p2, err := segment.New(segment.Env{}, run2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Start(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case <-p2.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("incarnation 2 never drained the spill")
	}
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}
	wal2 := p2.Instances()[0].(segmentWAL)
	sink2 := p2.Instances()[2].(segmentSink)
	if wal2.Replayed() != total || sink2.Delivered() != total {
		t.Fatalf("incarnation 2: replayed %d, delivered %d, want %d",
			wal2.Replayed(), sink2.Delivered(), total)
	}
	if left, _ := filepath.Glob(filepath.Join(walDir, "spill-*.wal")); len(left) != 0 {
		t.Fatalf("replayed spill not removed: %v", left)
	}

	// Bit-for-bit: the recovered archive must render exactly the records
	// the crashed run journaled, in journal order — i.e. the dataset as
	// its codec decoded it.
	var want strings.Builder
	df, err := os.Open(dataset)
	if err != nil {
		t.Fatal(err)
	}
	defer df.Close()
	r := netflow.NewReader(df)
	buf := make([]netflow.Record, 256)
	for {
		n, err := r.ReadBatch(buf)
		for i := 0; i < n; i++ {
			line, merr := json.Marshal(&buf[i])
			if merr != nil {
				t.Fatal(merr)
			}
			want.Write(line)
			want.WriteByte('\n')
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			t.Fatal(err)
		}
	}
	got, err := os.ReadFile(archive)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want.String() {
		t.Fatalf("recovered archive diverges from the journaled stream: %d vs %d bytes (digest %x vs %x)",
			len(got), want.Len(), TextDigest(string(got)), TextDigest(want.String()))
	}

	CheckGoroutines(t, baseline)
}
