package chaos_test

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/chaos"
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
)

// The scenario matrix shares one traffic script (same profile, minutes and
// training schedule) so that fault scenarios can be compared bit-for-bit
// against the fault-free reference.
const (
	scenarioMinutes = 8
	heapLimit       = 512 << 20
)

var trainSchedule = []int64{4, 7}

func baseScenario(name string) chaos.Scenario {
	return chaos.Scenario{
		Name:    name,
		Minutes: scenarioMinutes,
		TrainAt: append([]int64(nil), trainSchedule...),
	}
}

// runs is how many times every scenario replays; all replays must produce
// identical outcomes.
const runs = 3

func runScenario(t *testing.T, sc chaos.Scenario) []*chaos.Outcome {
	t.Helper()
	outs := make([]*chaos.Outcome, 0, runs)
	for i := 0; i < runs; i++ {
		out, err := chaos.Run(context.Background(), sc, t.TempDir())
		if err != nil {
			t.Fatalf("run %d of %s: %v", i, sc.Name, err)
		}
		outs = append(outs, out)
	}
	for i := 1; i < runs; i++ {
		if outs[i].Key() != outs[0].Key() {
			t.Fatalf("scenario %s is nondeterministic:\nrun 0:\n%s\nrun %d:\n%s",
				sc.Name, outs[0].Key(), i, outs[i].Key())
		}
	}
	return outs
}

// metricValue extracts one sample value from the rendered exposition.
func metricValue(t *testing.T, metrics, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(metrics, "\n") {
		rest, ok := strings.CutPrefix(line, series+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("series %q not found in metrics output", series)
	return 0
}

// TestChaosScenarios drives the full pipeline through the fault matrix.
// Every scenario asserts three layers of invariants: determinism (three
// seeded runs produce identical outcomes), survival (no goroutine leaks,
// bounded heap, the run completes), and output (for faults the pipeline
// must fully absorb, classifications and ACLs bit-identical to the
// fault-free reference; for lossy faults, exact loss accounting).
func TestChaosScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos scenarios replay full pipeline runs; skipped in -short")
	}

	ref := runScenario(t, baseScenario("reference"))[0]
	if ref.Kept == 0 || len(ref.Rounds) != 2 {
		t.Fatalf("reference run produced no training signal: kept=%d rounds=%d",
			ref.Kept, len(ref.Rounds))
	}
	if ref.Rounds[1].Skipped || len(ref.Rounds[1].Flagged) == 0 {
		t.Fatalf("reference final round did not classify: %+v", ref.Rounds[1])
	}
	if ref.ACLFile == "" {
		t.Fatal("reference run published no ACL file")
	}

	scenarios := []struct {
		sc chaos.Scenario
		// bitExact compares digests, rounds and ACL text to the reference.
		bitExact bool
		check    func(t *testing.T, out *chaos.Outcome)
	}{
		{
			sc:       baseScenario("baseline"),
			bitExact: true,
			check: func(t *testing.T, out *chaos.Outcome) {
				if out.Samples != out.SentSamples || out.Truncated != 0 || out.DecodeErrs != 0 {
					t.Errorf("healthy run mangled input: %+v", out)
				}
				if out.Ingested != out.Records {
					t.Errorf("records lost between collector and balancer: ingested=%d converted=%d",
						out.Ingested, out.Records)
				}
				if got := metricValue(t, out.Metrics, "ixps_training_rounds_total"); got != 2 {
					t.Errorf("ixps_training_rounds_total = %v, want 2", got)
				}
			},
		},
		{
			sc: func() chaos.Scenario {
				sc := baseScenario("truncated-datagrams")
				sc.DupTruncate = true
				return sc
			}(),
			bitExact: true,
			check: func(t *testing.T, out *chaos.Outcome) {
				if out.Truncated != out.SentDatagrams {
					t.Errorf("Truncated = %d, want one per valid datagram (%d)",
						out.Truncated, out.SentDatagrams)
				}
				if got := metricValue(t, out.Metrics,
					`ixps_collector_truncated_total{proto="sflow"}`); got != float64(out.Truncated) {
					t.Errorf("truncated metric = %v, counter = %d", got, out.Truncated)
				}
			},
		},
		{
			sc: func() chaos.Scenario {
				sc := baseScenario("garbage-datagrams")
				sc.DupGarbage = true
				return sc
			}(),
			bitExact: true,
			check: func(t *testing.T, out *chaos.Outcome) {
				if out.DecodeErrs != out.SentDatagrams {
					t.Errorf("DecodeErrs = %d, want one per valid datagram (%d)",
						out.DecodeErrs, out.SentDatagrams)
				}
				if got := metricValue(t, out.Metrics,
					`ixps_collector_malformed_total{proto="sflow"}`); got != float64(out.DecodeErrs) {
					t.Errorf("malformed metric = %v, counter = %d", got, out.DecodeErrs)
				}
			},
		},
		{
			sc: func() chaos.Scenario {
				sc := baseScenario("collector-socket-errors")
				sc.SocketErrAt = []int64{2, 5}
				return sc
			}(),
			bitExact: true,
			check: func(t *testing.T, out *chaos.Outcome) {
				if out.CollectorRestarts != 2 {
					t.Errorf("CollectorRestarts = %d, want 2", out.CollectorRestarts)
				}
				if out.Samples != out.SentSamples {
					t.Errorf("socket replacement lost samples: %d of %d", out.Samples, out.SentSamples)
				}
			},
		},
		{
			sc: func() chaos.Scenario {
				sc := baseScenario("bgp-session-drops")
				sc.KillBGPAt = []int64{1, 4, 6}
				return sc
			}(),
			bitExact: true,
			check: func(t *testing.T, out *chaos.Outcome) {
				if out.Reconnects != 3 {
					t.Errorf("Reconnects = %d, want 3", out.Reconnects)
				}
				if got := metricValue(t, out.Metrics,
					`ixps_bgp_member_reconnects_total{member="as64501"}`); got != 3 {
					t.Errorf("reconnect metric = %v, want 3", got)
				}
			},
		},
		{
			sc: func() chaos.Scenario {
				sc := baseScenario("withdraw-storm")
				sc.WithdrawStorm = 40
				return sc
			}(),
			bitExact: true,
			check: func(t *testing.T, out *chaos.Outcome) {
				if want := ref.Blackholes + 40; out.Blackholes != want {
					t.Errorf("Blackholes = %d, want %d (reference + 40 decoys)",
						out.Blackholes, want)
				}
			},
		},
		{
			sc: func() chaos.Scenario {
				sc := baseScenario("clock-skew")
				sc.SkewAt = []int64{3, 6}
				return sc
			}(),
			bitExact: true,
			check: func(t *testing.T, out *chaos.Outcome) {
				wantLate := out.SentSamples - ref.SentSamples // the skewed duplicates
				if wantLate == 0 || out.Late != wantLate {
					t.Errorf("Late = %d, want %d (every skewed record, no more)",
						out.Late, wantLate)
				}
				if got := metricValue(t, out.Metrics,
					"ixps_balancer_late_records_total"); got != float64(out.Late) {
					t.Errorf("late metric = %v, counter = %d", got, out.Late)
				}
			},
		},
		{
			// The consumer stalls for minutes 5-7 with a queue that holds
			// one normal minute comfortably but not three: the stall backlog
			// overflows and the drop policy engages. The scenario runs four
			// extra minutes past the stall so the final round trains on a
			// healthy window again. TrainAt keeps the reference's round@4
			// (pre-stall, so the prefix stays comparable) and moves the
			// final round to minute 11.
			sc: func() chaos.Scenario {
				sc := baseScenario("stuck-consumer")
				sc.Minutes = 12
				sc.TrainAt = []int64{4, 11}
				sc.StuckFrom, sc.StuckTo = 5, 7
				sc.QueueCap = 16
				sc.Drop = netflow.DropNewest
				return sc
			}(),
			check: func(t *testing.T, out *chaos.Outcome) {
				if out.DroppedBatches == 0 || out.DroppedRecords == 0 {
					t.Fatalf("stall dropped nothing: %+v", out)
				}
				// Conservation: every converted record was either balanced
				// or counted as dropped — nothing vanished silently.
				if out.Ingested+out.DroppedRecords != out.Records {
					t.Errorf("records unaccounted for: ingested=%d dropped=%d converted=%d",
						out.Ingested, out.DroppedRecords, out.Records)
				}
				// Up to the stall, the stream matches the reference (the
				// first two kept minutes precede StuckFrom).
				if got, want := prefixDigests(out, 2), prefixDigests(ref, 2); got == "" || got != want {
					t.Errorf("pre-stall stream diverged:\n%s\nwant:\n%s", got, want)
				}
				if out.Rounds[1].Skipped || len(out.Rounds[1].Flagged) == 0 {
					t.Errorf("pipeline did not recover to train after the stall: %+v", out.Rounds[1])
				}
				if got := metricValue(t, out.Metrics,
					`ixps_queue_dropped_records_total{stage="ingest"}`); got != float64(out.DroppedRecords) {
					t.Errorf("drop metric = %v, counter = %d", got, out.DroppedRecords)
				}
			},
		},
		{
			sc: func() chaos.Scenario {
				sc := baseScenario("label-panic")
				sc.PanicAt = []int64{2}
				return sc
			}(),
			check: func(t *testing.T, out *chaos.Outcome) {
				if out.Panics != 1 {
					t.Errorf("Panics = %d, want 1", out.Panics)
				}
				// Exactly the poisoned datagram's records are lost.
				if out.Ingested != out.SentSamples-16 {
					t.Errorf("Ingested = %d, want %d (one 16-sample datagram sacrificed)",
						out.Ingested, out.SentSamples-16)
				}
				if got, want := prefixDigests(out, 2), prefixDigests(ref, 2); got != want {
					t.Errorf("pre-panic stream diverged:\n%s\nwant:\n%s", got, want)
				}
				if out.Rounds[1].Skipped {
					t.Error("pipeline did not keep training after the panic")
				}
				if got := metricValue(t, out.Metrics,
					`ixps_collector_panics_total{proto="sflow"}`); got != 1 {
					t.Errorf("panic metric = %v, want 1", got)
				}
			},
		},
		{
			sc: func() chaos.Scenario {
				sc := baseScenario("torn-acl-writes")
				sc.FlakyWrites = true
				return sc
			}(),
			bitExact: true,
			check: func(t *testing.T, out *chaos.Outcome) {
				if out.WriterWrites == 0 || out.WriterRetries != 2*out.WriterWrites {
					t.Errorf("writes=%d retries=%d, want 2 retries per publish",
						out.WriterWrites, out.WriterRetries)
				}
				if out.TornWrites != out.WriterRetries {
					t.Errorf("TornWrites = %d, want %d", out.TornWrites, out.WriterRetries)
				}
			},
		},
		{
			// Registry-backed serving must be invisible downstream: every
			// round publishes its model to the on-disk registry and serves
			// the re-loaded bundle, and the output still matches the
			// in-process reference bit for bit — the full-stack hot-swap
			// equivalence guarantee.
			sc: func() chaos.Scenario {
				sc := baseScenario("registry-backed")
				sc.Registry = true
				return sc
			}(),
			bitExact: true,
			check: func(t *testing.T, out *chaos.Outcome) {
				if out.RegistryVersions != 2 || out.RegistryChampionSeq != 2 {
					t.Errorf("registry state: versions=%d champion=%d, want 2/2",
						out.RegistryVersions, out.RegistryChampionSeq)
				}
				if got := metricValue(t, out.Metrics, "ixps_registry_publishes_total"); got != 2 {
					t.Errorf("ixps_registry_publishes_total = %v, want 2", got)
				}
				if got := metricValue(t, out.Metrics, "ixps_model_promotions_total"); got != 2 {
					t.Errorf("ixps_model_promotions_total = %v, want 2", got)
				}
			},
		},
		{
			// A persistent model-store outage from minute 5 on: round@4
			// published and promoted seq 1; round@7's publish fails past the
			// retry budget. The round must still succeed — the last-good
			// champion keeps serving and writes the ACL — and the on-disk
			// registry (re-read from scratch at collect time) still resolves
			// the pre-outage champion despite the torn temp files the outage
			// left behind.
			sc: func() chaos.Scenario {
				sc := baseScenario("registry-outage")
				sc.Registry = true
				sc.RegistryOutageAt = 5
				return sc
			}(),
			check: func(t *testing.T, out *chaos.Outcome) {
				if len(out.Rounds) != 2 {
					t.Fatalf("rounds = %d, want 2", len(out.Rounds))
				}
				if out.Rounds[0].Seq != 1 || !out.Rounds[0].Promoted {
					t.Errorf("pre-outage round did not promote seq 1: %+v", out.Rounds[0])
				}
				r := out.Rounds[1]
				if r.Skipped || r.Seq != 1 || r.Promoted {
					t.Errorf("outage round must serve last-good seq 1 unpromoted: %+v", r)
				}
				if len(r.Flagged) == 0 || out.ACLFile == "" {
					t.Error("champion stopped producing ACLs during the outage")
				}
				// Pre-outage output matches the reference exactly.
				if out.Rounds[0].ACLDigest != ref.Rounds[0].ACLDigest {
					t.Error("pre-outage round diverged from reference")
				}
				if out.RegistryTorn == 0 {
					t.Error("outage tore no writes; fault not exercised")
				}
				if out.RegistryVersions != 1 || out.RegistryChampionSeq != 1 {
					t.Errorf("registry after outage: versions=%d champion=%d, want 1/1 (last-good)",
						out.RegistryVersions, out.RegistryChampionSeq)
				}
				if got := metricValue(t, out.Metrics, "ixps_registry_publish_failures_total"); got != 1 {
					t.Errorf("ixps_registry_publish_failures_total = %v, want 1", got)
				}
			},
		},
		{
			// Champion/challenger lifecycle under script: round@4 seeds the
			// champion (seq 1), round@7 trains seq 2 into the shadow slot
			// (champion still serves), minute 9 promotes it, round@11 serves
			// seq 2 while shadowing the next challenger. Auto-promotion is
			// disabled, so the serving schedule is exact.
			sc: func() chaos.Scenario {
				sc := baseScenario("shadow-registry-promote")
				sc.Minutes = 12
				sc.TrainAt = []int64{4, 7, 11}
				sc.PromoteAt = []int64{9}
				sc.Registry = true
				sc.Shadow = true
				return sc
			}(),
			check: func(t *testing.T, out *chaos.Outcome) {
				if len(out.Rounds) != 3 {
					t.Fatalf("rounds = %d, want 3", len(out.Rounds))
				}
				type lc struct {
					seq      uint64
					promoted bool
					shadowed bool
				}
				want := []lc{{1, true, false}, {1, false, true}, {2, false, true}}
				for i, w := range want {
					r := out.Rounds[i]
					if r.Seq != w.seq || r.Promoted != w.promoted || r.Shadowed != w.shadowed {
						t.Errorf("round %d lifecycle = seq=%d prom=%v shad=%v, want %+v",
							i, r.Seq, r.Promoted, r.Shadowed, w)
					}
				}
				if out.RegistryChampionSeq != 2 || out.RegistryVersions != 3 {
					t.Errorf("registry state: versions=%d champion=%d, want 3 versions, champion seq 2",
						out.RegistryVersions, out.RegistryChampionSeq)
				}
				if got := metricValue(t, out.Metrics, "ixps_model_promotions_total"); got != 2 {
					t.Errorf("ixps_model_promotions_total = %v, want 2", got)
				}
				if got := metricValue(t, out.Metrics, "ixps_shadow_scored_total"); got == 0 {
					t.Error("ixps_shadow_scored_total = 0, want shadow verdicts")
				}
			},
		},
		{
			// Mitigation fast path live in front of ingest: round@4 compiles
			// the champion's drop verdicts and hot-swaps them into the match
			// stage mid-storm, so minutes 5+ shed attack records before the
			// queue. Not compared to the reference — dropping reshapes the
			// training stream by design — but three replays must still be
			// bit-identical (compilation and matching are deterministic),
			// and record conservation must hold exactly across every swap.
			sc: func() chaos.Scenario {
				sc := baseScenario("drop-stage-swap")
				sc.Minutes = 12
				sc.TrainAt = []int64{4, 7, 11}
				sc.Dropper = true
				return sc
			}(),
			check: func(t *testing.T, out *chaos.Outcome) {
				if len(out.Rounds) != 3 {
					t.Fatalf("rounds = %d, want 3", len(out.Rounds))
				}
				if out.DropperSwaps != 3 {
					t.Errorf("DropperSwaps = %d, want one hot swap per round", out.DropperSwaps)
				}
				if out.DropperDropped == 0 {
					t.Error("compiled verdicts dropped nothing; fast path not exercised")
				}
				// Every converted record entered the stage, and every one of
				// them either reached the balancer or was dropped by a rule —
				// recompile + swap lost nothing, not even mid-storm.
				if out.DropperEvaluated != out.Records {
					t.Errorf("stage evaluated %d of %d converted records",
						out.DropperEvaluated, out.Records)
				}
				if out.Ingested+out.DropperDropped != out.Records {
					t.Errorf("records unaccounted for across swaps: ingested=%d dropped=%d converted=%d",
						out.Ingested, out.DropperDropped, out.Records)
				}
				// The swap itself must never cost ingest: the queue saw no
				// batch or record drops at any point.
				if out.DroppedBatches != 0 || out.DroppedRecords != 0 {
					t.Errorf("queue dropped during swaps: batches=%d records=%d",
						out.DroppedBatches, out.DroppedRecords)
				}
				if out.Rounds[2].Skipped || len(out.Rounds[2].Flagged) == 0 {
					t.Errorf("pipeline stopped classifying with the dropper live: %+v", out.Rounds[2])
				}
				if !strings.Contains(out.Metrics, "ixps_dropper_rule_drops_total{rule=") {
					t.Error("per-rule drop counters missing from metrics")
				}
				if got := metricValue(t, out.Metrics, "ixps_dropper_dropped_total"); got != float64(out.DropperDropped) {
					t.Errorf("dropped metric = %v, counter = %d", got, out.DropperDropped)
				}
			},
		},
		{
			sc: func() chaos.Scenario {
				sc := baseScenario("checkpointed-run")
				sc.Checkpoint = true
				return sc
			}(),
			bitExact: true,
			check: func(t *testing.T, out *chaos.Outcome) {
				if !out.CheckpointOK {
					t.Error("no checkpoint file published")
				}
				if got := metricValue(t, out.Metrics, "ixps_checkpoints_total"); got != 2 {
					t.Errorf("ixps_checkpoints_total = %v, want 2 (one per round)", got)
				}
			},
		},
		{
			// Sketch-mode aggregation: the bounded-memory path replaces the
			// exact per-target maps, so the scenario is not compared against
			// the exact reference — runScenario already proves three replays
			// are bit-identical, and the checks prove the pipeline still
			// trains, classifies and publishes through the sketch path while
			// exporting its gauges.
			sc: func() chaos.Scenario {
				sc := baseScenario("sketch-aggregation")
				sc.SketchBudget = 0.05
				return sc
			}(),
			check: func(t *testing.T, out *chaos.Outcome) {
				if len(out.Rounds) != 2 || out.Rounds[1].Skipped || len(out.Rounds[1].Flagged) == 0 {
					t.Fatalf("sketch run did not classify: %+v", out.Rounds)
				}
				if out.ACLFile == "" {
					t.Error("sketch run published no ACL file")
				}
				// The balanced input stream is upstream of aggregation and
				// must match the exact reference bit for bit.
				if got, want := out.DigestsFrom(0), ref.DigestsFrom(0); got != want {
					t.Errorf("sketch mode disturbed the balanced stream:\n%s\nwant:\n%s", got, want)
				}
				if got := metricValue(t, out.Metrics, "ixps_features_resident_groups"); got <= 0 {
					t.Errorf("ixps_features_resident_groups = %v, want > 0", got)
				}
				if got := metricValue(t, out.Metrics, "ixps_features_sketch_bytes"); got <= 0 {
					t.Errorf("ixps_features_sketch_bytes = %v, want > 0", got)
				}
			},
		},
	}

	for _, tc := range scenarios {
		t.Run(tc.sc.Name, func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			outs := runScenario(t, tc.sc)
			out := outs[0]
			if tc.bitExact {
				if got, want := out.ExactKey(), ref.ExactKey(); got != want {
					t.Errorf("fault leaked into the output stream:\ngot:\n%s\nwant:\n%s", got, want)
				}
			}
			if tc.check != nil {
				tc.check(t, out)
			}
			chaos.CheckGoroutines(t, baseline)
			chaos.CheckHeap(t, heapLimit)
		})
	}
}

// prefixDigests renders an outcome's digests for relative minutes [0, n)
// — the prefix of the stream a mid-run fault must not have touched. All
// scenarios share the same start minute, so prefixes are comparable.
func prefixDigests(o *chaos.Outcome, n int64) string {
	first := int64(0)
	for m := range o.Digests {
		if first == 0 || m < first {
			first = m
		}
	}
	var b strings.Builder
	for m := first; m < first+n; m++ {
		if d, ok := o.Digests[m]; ok {
			fmt.Fprintf(&b, "%d=%016x\n", m, d)
		}
	}
	return b.String()
}
