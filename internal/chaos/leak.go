package chaos

import (
	"runtime"
	"testing"
	"time"
)

// CheckGoroutines fails the test when the live goroutine count has not
// returned to the pre-scenario baseline within a grace period. Every chaos
// scenario tears its whole stack down (route server, collector supervisor,
// queue consumer, BGP sessions); anything still running afterwards is a
// leak — precisely the failure mode fault-injection tends to create, a
// goroutine stuck on a channel nobody closes after an error path.
//
// The check is count-based (stdlib only), so callers must not run leak-
// checked scenarios in parallel. The retry loop absorbs goroutines that
// are mid-exit when the scenario returns.
func CheckGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d live, baseline %d\n%s",
		runtime.NumGoroutine(), baseline, buf[:n])
}

// CheckHeap fails the test when the live heap exceeds limit bytes after a
// full GC — the bounded-memory survival invariant. The bound is generous;
// it exists to catch unbounded buffering (a queue that stopped dropping, a
// window that stopped pruning), not to benchmark.
func CheckHeap(t *testing.T, limit uint64) {
	t.Helper()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > limit {
		t.Fatalf("heap grew past the scenario bound: %d > %d bytes", ms.HeapAlloc, limit)
	}
}
