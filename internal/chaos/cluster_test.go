package chaos_test

import (
	"context"
	"strings"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/cluster"
)

// driveCluster steps a cluster through relative minutes [from, to), training
// and gossiping after the minutes listed, checkpointing the coordinator
// after every minute when cp is set. Returns every gossip report.
func driveCluster(t *testing.T, c *cluster.Cluster, from, to int64, trainAt map[int64]bool, gossipAt map[int64]bool, opt cluster.GossipOptions, cp bool) []*cluster.GossipReport {
	t.Helper()
	ctx := context.Background()
	var reports []*cluster.GossipReport
	for m := from; m < to; m++ {
		if err := c.Step(ctx); err != nil {
			t.Fatalf("step %d: %v", m, err)
		}
		if trainAt[m] {
			if err := c.TrainAll(ctx); err != nil {
				t.Fatalf("train %d: %v", m, err)
			}
		}
		if gossipAt[m] {
			rep, err := c.Gossip(ctx, opt)
			if err != nil {
				t.Fatalf("gossip %d: %v", m, err)
			}
			reports = append(reports, rep)
		}
		if cp {
			if err := c.SaveCheckpoint(ctx); err != nil {
				t.Fatalf("checkpoint %d: %v", m, err)
			}
		}
	}
	return reports
}

// TestClusterCrashRestartConvergesToReference kills the whole multi-site
// coordinator right after a train+gossip+checkpoint minute and restarts it
// from disk. The restarted cluster must converge to the uninterrupted
// reference bit-for-bit: every site's post-restart kept-stream digests,
// the final training rounds, the final election results and the final
// champions are identical — the crash is invisible downstream.
func TestClusterCrashRestartConvergesToReference(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos scenarios replay full multi-site runs; skipped in -short")
	}
	const sites = 3
	const crashAt = 6 // relative minute the crash interrupts (post minute-5 round)
	trainAt := map[int64]bool{5: true, 9: true}
	gossipAt := map[int64]bool{5: true, 9: true}

	// Fault-free reference.
	ref, err := cluster.New(cluster.Config{Sites: sites, Seed: 1, Dir: t.TempDir(), Checkpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	ref.Start(context.Background())
	refReports := driveCluster(t, ref, 0, 12, trainAt, gossipAt, cluster.GossipOptions{}, true)
	refOut := ref.Outcome()
	ref.Stop()
	if len(refReports) != 2 {
		t.Fatalf("reference ran %d gossip rounds, want 2", len(refReports))
	}

	// Crashed run: same config, abandoned right after the minute-5
	// train+gossip round checkpointed. Nothing is flushed on the way out —
	// the "crash" is simply never calling Stop and dropping the process
	// state on the floor.
	crashDir := t.TempDir()
	crashed, err := cluster.New(cluster.Config{Sites: sites, Seed: 1, Dir: crashDir, Checkpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	crashed.Start(context.Background())
	driveCluster(t, crashed, 0, crashAt, trainAt, gossipAt, cluster.GossipOptions{}, true)

	// Restart from what the crash left in crashDir and run to the end.
	restarted, err := cluster.New(cluster.Config{Sites: sites, Seed: 1, Dir: crashDir, Checkpoint: true, Restore: true})
	if err != nil {
		t.Fatalf("restore after crash: %v", err)
	}
	defer restarted.Stop()
	restarted.Start(context.Background())
	if got := restarted.Minute(); got != crashAt {
		t.Fatalf("restored coordinator resumes at minute %d, want %d", got, crashAt)
	}
	restReports := driveCluster(t, restarted, crashAt, 12, trainAt, gossipAt, cluster.GossipOptions{}, true)
	restOut := restarted.Outcome()

	// Post-crash traffic is bit-identical: the generators, balancer RNG
	// streams and windows all resumed mid-sequence.
	boundary := int64(cluster.DefaultStartMin) + crashAt
	if got, want := restOut.DigestsFrom(boundary), refOut.DigestsFrom(boundary); got != want {
		t.Errorf("post-restart kept-stream digests diverge from fault-free reference:\n--- restarted\n%s--- reference\n%s", got, want)
	}

	// The final training round and election are bit-identical.
	if len(restReports) != 1 {
		t.Fatalf("restarted run gossiped %d times, want 1", len(restReports))
	}
	final, refFinal := restReports[0], refReports[1]
	if len(final.Elections) != len(refFinal.Elections) {
		t.Fatalf("final elections: %d vs reference %d", len(final.Elections), len(refFinal.Elections))
	}
	for i := range final.Elections {
		if got, want := final.Elections[i].String(), refFinal.Elections[i].String(); got != want {
			t.Errorf("final election %d diverges:\n%s\nreference:\n%s", i, got, want)
		}
	}
	for i := range restOut.Sites {
		rs, fs := &restOut.Sites[i], &refOut.Sites[i]
		if rs.ChampionID != fs.ChampionID {
			t.Errorf("site %s: final champion %s, reference %s", rs.Name, rs.ChampionID, fs.ChampionID)
		}
		if rs.ACLFile != fs.ACLFile {
			t.Errorf("site %s: final ACL diverges from reference", rs.Name)
		}
		if len(rs.Rounds) == 0 || rs.Rounds[len(rs.Rounds)-1].ACLDigest != fs.Rounds[len(fs.Rounds)-1].ACLDigest {
			t.Errorf("site %s: final round ACL digest diverges", rs.Name)
		}
	}
	// Gossip accounting carried across the crash: 2 rounds total.
	if restOut.GossipRounds != refOut.GossipRounds {
		t.Errorf("gossip rounds: %d, reference %d", restOut.GossipRounds, refOut.GossipRounds)
	}
}

// TestClusterPartitionTolerance cuts one site off from gossip: its bundle
// reaches nobody and it receives nothing. The partitioned site keeps
// serving its last-good champion and keeps ingesting its share of traffic;
// the surviving sites hold their election among themselves; and the
// cluster's conservation invariants (routed == ingested everywhere) hold
// throughout.
func TestClusterPartitionTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos scenarios replay full multi-site runs; skipped in -short")
	}
	c, err := cluster.New(cluster.Config{Sites: 3, Seed: 1, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.Start(context.Background())

	// Healthy warm-up round.
	driveCluster(t, c, 0, 6, map[int64]bool{5: true}, map[int64]bool{5: true}, cluster.GossipOptions{}, false)
	part := c.Sites()[0]
	seqBefore, idBefore := part.Pipeline().ActiveModel()
	if idBefore == "" {
		t.Fatal("partitioned site has no champion before the partition")
	}
	keptBefore := c.Outcome().Sites[0].Kept

	// Partition: site 0 is excluded from the next gossip rounds while
	// traffic keeps flowing everywhere. Only sites 1 and 2 retrain — the
	// partitioned site's control plane is stalled, not just its gossip.
	ctx := context.Background()
	exclude := cluster.GossipOptions{Exclude: map[int]bool{0: true}}
	var reports []*cluster.GossipReport
	for m := int64(6); m < 10; m++ {
		if err := c.Step(ctx); err != nil {
			t.Fatalf("step %d: %v", m, err)
		}
		if m == 9 {
			if err := c.TrainSites(ctx, 1, 2); err != nil {
				t.Fatal(err)
			}
			rep, err := c.Gossip(ctx, exclude)
			if err != nil {
				t.Fatalf("partitioned gossip: %v", err)
			}
			reports = append(reports, rep)
		}
	}

	// The partitioned site: last-good champion still serving, traffic
	// still ingested and classified.
	if seq, id := part.Pipeline().ActiveModel(); seq != seqBefore || id != idBefore {
		t.Errorf("partitioned site's champion moved during the partition: %d/%s -> %d/%s", seqBefore, idBefore, seq, id)
	}
	if part.Pipeline().ChampionScrubber() == nil {
		t.Error("partitioned site stopped serving")
	}
	out := c.Outcome()
	if out.Sites[0].Kept <= keptBefore {
		t.Error("partitioned site stopped keeping records during the partition")
	}

	// The survivors' election excluded the partitioned site entirely.
	rep := reports[0]
	for _, ex := range rep.Exports {
		if ex.Origin == 0 {
			t.Error("partitioned site's bundle leaked into gossip")
		}
	}
	for _, el := range rep.Elections {
		if el.Site == 0 {
			t.Error("partitioned site held an election")
		}
		for _, cand := range el.Candidates {
			if cand.Origin == 0 {
				t.Error("partitioned site's candidate scored at a survivor")
			}
		}
	}

	// Conservation: every record routed somewhere was ingested there;
	// nothing vanished because one site fell off the control plane.
	for _, s := range out.Sites {
		if s.Ingested != s.Routed {
			t.Errorf("site %s: ingested %d != routed %d", s.Name, s.Ingested, s.Routed)
		}
	}
}

// TestClusterTornImport: a bundle torn in flight degrades exactly the
// receiving edge — the victim site rejects it, completes its election on
// the candidates it could verify, keeps serving, and the coordinator
// counts the rejected transfer.
func TestClusterTornImport(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos scenarios replay full multi-site runs; skipped in -short")
	}
	c, err := cluster.New(cluster.Config{Sites: 3, Seed: 1, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.Start(context.Background())
	driveCluster(t, c, 0, 6, map[int64]bool{5: true}, nil, cluster.GossipOptions{}, false)

	rep, err := c.Gossip(context.Background(), cluster.GossipOptions{
		Corrupt: func(origin, dst int, bundle []byte) []byte {
			if dst == 0 {
				// Everything arriving at site 0 tears mid-transfer.
				return bundle[:len(bundle)/3]
			}
			return bundle
		},
	})
	if err != nil {
		t.Fatalf("gossip with torn transfers must not fail the round: %v", err)
	}
	for _, el := range rep.Elections {
		if el.Site == 0 {
			if el.Promoted {
				t.Error("site 0 promoted a torn bundle")
			}
			for _, cand := range el.Candidates {
				if !cand.Invalid {
					t.Errorf("torn candidate from %d accepted at site 0", cand.Origin)
				}
				if !strings.Contains(cand.Err, "rejecting bundle") && !strings.Contains(cand.Err, "classifier-only") {
					t.Errorf("unexpected rejection reason: %s", cand.Err)
				}
			}
			continue
		}
		// Other edges are untouched: valid candidates, normal election.
		for _, cand := range el.Candidates {
			if cand.Invalid {
				t.Errorf("site %d candidate from %d invalid: %s", el.Site, cand.Origin, cand.Err)
			}
		}
	}
	out := c.Outcome()
	if out.Rejected != 2 {
		t.Errorf("rejected transfers = %d, want 2 (both arrivals at site 0)", out.Rejected)
	}
	if c.Sites()[0].Pipeline().ChampionScrubber() == nil {
		t.Error("victim site stopped serving after torn imports")
	}
}
