// Package chaos is a seeded, fully deterministic fault-injection harness
// for the complete scrubber pipeline. It drives the same production path
// cmd/scrubberd runs — sFlow collector -> bounded ingest queue -> online
// balancer -> sliding window -> two-step model -> atomic ACL writer, with
// blackhole labels learned over real BGP sessions — through scripted fault
// scenarios: truncated and garbage datagrams, collector socket errors,
// BGP session drops and withdraw storms, stuck downstream consumers,
// exporter clock skew, torn ACL writes, label-hook panics, and mid-run
// crash/restart from a checkpoint.
//
// Determinism is the point: every run of a scenario produces bit-identical
// balanced-stream digests, classifications and ACL text, so tests can
// assert not only that the pipeline survives a fault but exactly what the
// fault cost. Three mechanisms make that possible:
//
//   - virtual time (Clock) — record timestamps, registry windows and the
//     training schedule advance in lock step with the script, never with
//     the wall clock;
//   - an in-memory packet conn (PacketConn) — datagrams arrive in
//     injection order with no UDP loss, read deadlines resolve instantly
//     and socket errors happen exactly where scripted;
//   - lock-step settling — the harness drains the collector and the
//     ingest queue between simulated minutes, so batch boundaries (and
//     therefore drop decisions under backpressure) are reproducible.
package chaos

import (
	"context"
	"sync"
)

// Clock is a shared virtual clock in unix seconds. The harness advances it
// once per simulated minute; the collector, the registry's route server and
// the pipeline's window pruning all read it through Now.
type Clock struct {
	mu  sync.Mutex
	now int64
}

// Set moves the clock to t.
func (c *Clock) Set(t int64) {
	c.mu.Lock()
	c.now = t
	c.mu.Unlock()
}

// Now returns the current virtual time.
func (c *Clock) Now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Gate stalls the pipeline's queue consumer to model a stuck downstream
// stage. While closed, Wait blocks every consume; Open releases them. The
// zero Gate is open.
type Gate struct {
	mu sync.Mutex
	ch chan struct{} // non-nil while closed; closing it reopens the gate
}

// Close starts stalling waiters. Closing an already-closed gate is a no-op.
func (g *Gate) Close() {
	g.mu.Lock()
	if g.ch == nil {
		g.ch = make(chan struct{})
	}
	g.mu.Unlock()
}

// Open releases all waiters. Opening an open gate is a no-op.
func (g *Gate) Open() {
	g.mu.Lock()
	if g.ch != nil {
		close(g.ch)
		g.ch = nil
	}
	g.mu.Unlock()
}

// Wait blocks while the gate is closed (or until ctx ends).
func (g *Gate) Wait(ctx context.Context) {
	g.mu.Lock()
	ch := g.ch
	g.mu.Unlock()
	if ch == nil {
		return
	}
	select {
	case <-ch:
	case <-ctx.Done():
	}
}
