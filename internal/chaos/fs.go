package chaos

import (
	"errors"
	"os"
	"sync/atomic"

	"github.com/ixp-scrubber/ixpscrubber/internal/acl"
)

// ErrTornWrite is the scripted failure FlakyFS injects: the write reports
// an error after leaving partial data behind, the exact fault the atomic
// temp-file-and-rename protocol exists to mask.
var ErrTornWrite = errors.New("chaos: scripted torn write")

// FlakyFS wraps an acl.FS and tears WriteFile calls on a repeating
// schedule: of every Period calls, the first Fail ones write half the data
// and return ErrTornWrite. With Fail < the writer's retry budget, every
// publish eventually succeeds — after a deterministic number of retries —
// and the published files must still be complete.
type FlakyFS struct {
	// Inner is the real filesystem; nil means acl.OSFS.
	Inner acl.FS
	// Fail of every Period WriteFile calls are torn. Period 0 disables.
	Fail, Period int

	calls atomic.Uint64
	// Torn counts the injected failures.
	Torn atomic.Uint64
}

func (f *FlakyFS) inner() acl.FS {
	if f.Inner != nil {
		return f.Inner
	}
	return acl.OSFS{}
}

// WriteFile tears the call when the schedule says so.
func (f *FlakyFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	n := f.calls.Add(1) - 1
	if f.Period > 0 && int(n%uint64(f.Period)) < f.Fail {
		f.Torn.Add(1)
		_ = f.inner().WriteFile(name, data[:len(data)/2], perm)
		return ErrTornWrite
	}
	return f.inner().WriteFile(name, data, perm)
}

// Rename passes through.
func (f *FlakyFS) Rename(oldpath, newpath string) error { return f.inner().Rename(oldpath, newpath) }

// Remove passes through.
func (f *FlakyFS) Remove(name string) error { return f.inner().Remove(name) }

// OutageFS models a persistent storage outage: once tripped, every
// WriteFile leaves half the data behind and fails — past any retry budget,
// so publishes through it fail for good. The registry outage scenario uses
// it to prove a dead model store degrades serving gracefully (the last-good
// champion keeps writing ACLs) instead of failing rounds.
type OutageFS struct {
	// Inner is the real filesystem; nil means acl.OSFS.
	Inner acl.FS

	down atomic.Bool
	// Torn counts writes torn by the outage.
	Torn atomic.Uint64
}

func (f *OutageFS) inner() acl.FS {
	if f.Inner != nil {
		return f.Inner
	}
	return acl.OSFS{}
}

// Trip starts the outage; there is no recovery.
func (f *OutageFS) Trip() { f.down.Store(true) }

// WriteFile tears every call once the outage has been tripped.
func (f *OutageFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	if f.down.Load() {
		f.Torn.Add(1)
		_ = f.inner().WriteFile(name, data[:len(data)/2], perm)
		return ErrTornWrite
	}
	return f.inner().WriteFile(name, data, perm)
}

// Rename passes through.
func (f *OutageFS) Rename(oldpath, newpath string) error { return f.inner().Rename(oldpath, newpath) }

// Remove passes through.
func (f *OutageFS) Remove(name string) error { return f.inner().Remove(name) }
