package chaos

import (
	"encoding/binary"

	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
)

// FNV-1a 64-bit parameters. The harness chains digests record by record,
// so a per-minute digest is sensitive to record content and order — the
// balanced stream must be bit-identical, not merely set-identical, for two
// runs to produce the same value.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// fold mixes p into the running FNV-1a state h.
func fold(h uint64, p []byte) uint64 {
	for _, c := range p {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// foldRecord mixes every field of one flow record into h using a fixed
// binary encoding.
func foldRecord(h uint64, r *netflow.Record) uint64 {
	var b [75]byte
	binary.BigEndian.PutUint64(b[0:], uint64(r.Timestamp))
	src := r.SrcIP.As16()
	copy(b[8:], src[:])
	dst := r.DstIP.As16()
	copy(b[24:], dst[:])
	binary.BigEndian.PutUint16(b[40:], r.SrcPort)
	binary.BigEndian.PutUint16(b[42:], r.DstPort)
	b[44] = r.Protocol
	b[45] = r.TCPFlags
	if r.Fragment {
		b[46] = 1
	}
	copy(b[47:], r.SrcMAC[:])
	copy(b[53:], r.DstMAC[:])
	binary.BigEndian.PutUint64(b[59:], r.Packets)
	binary.BigEndian.PutUint64(b[67:], r.Bytes)
	h = fold(h, b[:])
	var tail [5]byte
	binary.BigEndian.PutUint32(tail[0:], r.SamplingRate)
	if r.Blackholed {
		tail[4] = 1
	}
	return fold(h, tail[:])
}

// TextDigest hashes a string (rendered ACL files, exported rule lists).
func TextDigest(s string) uint64 { return fold(fnvOffset, []byte(s)) }
