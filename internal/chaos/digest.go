package chaos

import (
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
)

// The record-folding primitives live in internal/netflow so the cluster
// harness can share the exact encoding; the chained-digest discipline is
// documented there. Aliased here because every scenario digest predates
// the move.
const fnvOffset = netflow.FNVOffset

// fold mixes p into the running FNV-1a state h.
func fold(h uint64, p []byte) uint64 { return netflow.FoldBytes(h, p) }

// foldRecord mixes every field of one flow record into h using a fixed
// binary encoding.
func foldRecord(h uint64, r *netflow.Record) uint64 { return netflow.FoldRecord(h, r) }

// TextDigest hashes a string (rendered ACL files, exported rule lists).
func TextDigest(s string) uint64 { return netflow.FoldString(netflow.FNVOffset, s) }
