// Package features implements the Step 2 aggregation of §5.2.1: flows are
// grouped per <one-minute bin, target IP> and the categorical flow
// properties C = {source IP, source port, destination port, source MAC,
// transport protocol} are ranked by the metrics M = {mean packet size, sum
// of bytes, sum of packets} with r = 5 ranks. Each ranking stores both the
// categorical value and the aggregated metric, giving |M|·|C|·2r = 150
// feature columns; categorical slots are WoE-encoded before reaching a
// classifier.
//
// Matching tagging rules are annotated onto every aggregate (but never used
// as classifier features — that would leak Step 1 labels), enabling the
// local explainability overlap analysis of §6.6.
package features

import (
	"fmt"
	"math"
	"net/netip"
	"runtime"
	"sort"

	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/par"
	"github.com/ixp-scrubber/ixpscrubber/internal/tagging"
	"github.com/ixp-scrubber/ixpscrubber/internal/woe"
)

// Ranking geometry (paper values).
const (
	// R is the number of ranks kept per (categorical, metric) pair.
	R = 5
	// NumCats is |C|.
	NumCats = 5
	// NumMets is |M|.
	NumMets = 3
	// NumColumns is the total feature column count (150).
	NumColumns = NumCats * NumMets * R * 2
)

// Categorical identifiers, ordered as in the paper's feature notation.
const (
	CatSrcIP = iota
	CatSrcPort
	CatDstPort
	CatSrcMAC
	CatProto
)

// Metric identifiers.
const (
	MetPktSize = iota // mean packet size
	MetBytes          // sum of bytes
	MetPackets        // sum of packets
)

// CatNames are the WoE domain names per categorical.
var CatNames = [NumCats]string{"src_ip", "port_src", "port_dst", "src_mac", "protocol"}

// MetNames name the ranking metrics.
var MetNames = [NumMets]string{"pkt_size", "bytes", "packets"}

// Aggregate is one per-<minute, target IP> record: the top-R categorical
// values per metric with their metric values, the blackhole label, and the
// annotated tagging rules.
type Aggregate struct {
	Minute int64
	Target netip.Addr
	Label  bool

	// Keys[cat][met][rank] is the WoE key of the ranked categorical value;
	// Present marks filled slots; Mets carries the metric value.
	Keys    [NumCats][NumMets][R]uint64
	Present [NumCats][NumMets][R]bool
	Mets    [NumCats][NumMets][R]float64

	// Distinct estimates the number of distinct values seen per categorical
	// (exact map cardinality on the exact path, HyperLogLog estimate in
	// sketch mode). Informational: not one of the 150 paper feature columns.
	Distinct [NumCats]float64

	// RuleIDs are the tagging rules matched by at least one flow of this
	// aggregate (annotation only; see package comment).
	RuleIDs []string
	// Vector is the dominant ground-truth attack vector among the flows
	// (experiments only; empty in production where truth is unknown).
	Vector string
	// Flows is the number of flow records aggregated.
	Flows int
}

// ColumnName formats a feature column the way Figure 10 labels them:
// categorical/metric/rank, with a "@" suffix on the metric column.
func ColumnName(cat, met, rank int, isMetric bool) string {
	base := fmt.Sprintf("%s/%s/%d", CatNames[cat], MetNames[met], rank)
	if isMetric {
		return base + "@val"
	}
	return base
}

// ColumnNames returns all 150 column names in encoding order.
func ColumnNames() []string {
	names := make([]string, 0, NumColumns)
	for c := 0; c < NumCats; c++ {
		for m := 0; m < NumMets; m++ {
			for r := 0; r < R; r++ {
				names = append(names, ColumnName(c, m, r, false))
				names = append(names, ColumnName(c, m, r, true))
			}
		}
	}
	return names
}

// catKey extracts the WoE key of a categorical from a flow record.
func catKey(cat int, rec *netflow.Record) uint64 {
	switch cat {
	case CatSrcIP:
		return woe.KeyAddr(rec.SrcIP)
	case CatSrcPort:
		return woe.KeyPort(rec.SrcPort)
	case CatDstPort:
		return woe.KeyPort(rec.DstPort)
	case CatSrcMAC:
		return woe.KeyMAC(rec.SrcMAC)
	default:
		return woe.KeyProto(rec.Protocol)
	}
}

// group accumulates the flows of one <minute, target>.
type group struct {
	minute int64
	target netip.Addr
	label  bool
	// per categorical: value -> (bytes, packets)
	acc   [NumCats]map[uint64][2]uint64
	rules map[string]struct{}
	vec   map[string]int
	flows int
}

// reset clears a recycled group for a new <minute, target>. The maps keep
// their buckets, so steady-state aggregation allocates only when a minute's
// cardinality exceeds everything seen before.
func (g *group) reset(minute int64, target netip.Addr) {
	g.minute = minute
	g.target = target
	g.label = false
	g.flows = 0
	for c := range g.acc {
		clear(g.acc[c])
	}
	clear(g.rules)
	clear(g.vec)
}

// Aggregator groups a minute-ordered flow stream. Call Add per flow (or
// AddBatch per batch), then Close at the end; minutes flush automatically
// when the stream's minute advances.
//
// Internally the per-minute state is split into dst-IP-hash shards, each
// holding its own target map. Sharding keeps the per-map cardinality
// bounded as target counts grow and lets the minute flush rank shards'
// groups in parallel; the merged emission order (targets ascending) is
// identical at every shard and worker count.
type Aggregator struct {
	// Tagger, when set, annotates matching rule IDs onto aggregates.
	Tagger *tagging.Tagger
	// Emit receives completed aggregates.
	Emit func(*Aggregate)
	// Workers bounds the flush fan-out: 0 sizes from GOMAXPROCS, 1 forces
	// the serial path. Output is identical at every value.
	Workers int
	// Metrics, when set, receives aggregation gauges at every minute flush.
	Metrics *Metrics

	cur    int64
	shards []shardState
	mask   uint64
	finish []*Aggregate // flush scratch, reused across minutes
	errW   []float64    // per-group rel-error scratch: summed error bounds
	errT   []float64    // per-group rel-error scratch: summed totals
}

// shardState is the per-shard half of the aggregator: either an exact target
// map or a bounded sketch table, plus the shard-owned scratch (free list,
// tagger hit buffer) that lets shards run on independent goroutines in the
// parallel ingest path without sharing mutable state.
type shardState struct {
	groups map[netip.Addr]*group // exact mode
	sk     *sketchShard          // sketch mode (nil when exact)
	free   []*group              // recycled groups, maps pre-grown by earlier minutes
	hits   []int                 // tagger match scratch
}

// Metrics receives aggregation gauges at each minute flush. Any field may be
// nil; the core wiring points them at obs gauges.
type Metrics struct {
	// ResidentGroups is the number of <minute, target> groups resident at
	// the flush.
	ResidentGroups func(float64)
	// SketchBytes is the steady-state heap footprint of the sketch
	// structures (0 on the exact path).
	SketchBytes func(float64)
	// EstimateRelError is the flushed minute's aggregate relative error
	// bound: summed admission error over summed estimated totals across all
	// emitted ranking entries (0 on the exact path).
	EstimateRelError func(float64)
}

func (m *Metrics) observeFlush(resident, sketchBytes, relErr float64) {
	if m == nil {
		return
	}
	if m.ResidentGroups != nil {
		m.ResidentGroups(resident)
	}
	if m.SketchBytes != nil {
		m.SketchBytes(sketchBytes)
	}
	if m.EstimateRelError != nil {
		m.EstimateRelError(relErr)
	}
}

// DefaultShards ties the shard count to the worker parallelism actually
// available: the largest power of two not exceeding GOMAXPROCS, clamped to
// [1, 16]. Shards beyond core count buy no flush or ingest parallelism (a
// 1-core box gets exactly 1 shard), and beyond 16 the per-shard maps are too
// sparse to matter at realistic per-minute target counts.
func DefaultShards() int { return shardsFor(runtime.GOMAXPROCS(0)) }

// shardsFor is DefaultShards for an explicit parallelism level.
func shardsFor(procs int) int {
	if procs > 16 {
		procs = 16
	}
	s := 1
	for s*2 <= procs {
		s <<= 1
	}
	return s
}

// NewAggregator returns an Aggregator emitting into emit, sharded per
// DefaultShards.
func NewAggregator(tagger *tagging.Tagger, emit func(*Aggregate)) *Aggregator {
	return NewAggregatorShards(tagger, DefaultShards(), emit)
}

// NewAggregatorShards returns an exact-mode Aggregator with an explicit
// shard count (rounded up to a power of two). Aggregate output is
// bit-for-bit identical at every shard count; the knob trades memory
// locality against flush parallelism.
func NewAggregatorShards(tagger *tagging.Tagger, shards int, emit func(*Aggregate)) *Aggregator {
	return NewAggregatorSketch(tagger, shards, nil, emit)
}

// NewAggregatorSketch returns an Aggregator with an explicit shard count and,
// when cfg is non-nil, the bounded-memory sketch mode enabled: steady-state
// heap is O(shards × K × sketch width) regardless of how many distinct
// targets appear per minute, at the cost of the error budget declared by cfg.
func NewAggregatorSketch(tagger *tagging.Tagger, shards int, cfg *SketchConfig, emit func(*Aggregate)) *Aggregator {
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	a := &Aggregator{
		Tagger: tagger,
		Emit:   emit,
		cur:    math.MinInt64,
		shards: make([]shardState, n),
		mask:   uint64(n - 1),
	}
	if cfg != nil {
		rc := cfg.resolve()
		for i := range a.shards {
			a.shards[i].sk = newSketchShard(rc, n)
		}
	} else {
		for i := range a.shards {
			a.shards[i].groups = make(map[netip.Addr]*group)
		}
	}
	return a
}

// Sketch reports the resolved sketch configuration, or nil in exact mode.
func (a *Aggregator) Sketch() *SketchConfig {
	if a.shards[0].sk == nil {
		return nil
	}
	cfg := a.shards[0].sk.cfg
	return &cfg
}

// shardIndex hashes a target address onto a shard (FNV-1a over the 16-byte
// form — deterministic across processes, unlike Go's seeded map hash).
func (a *Aggregator) shardIndex(addr netip.Addr) uint64 {
	if a.mask == 0 {
		return 0
	}
	b := addr.As16()
	h := uint64(14695981039346656037)
	for _, x := range b {
		h = (h ^ uint64(x)) * 1099511628211
	}
	return h & a.mask
}

// Add feeds one flow with its (optional) ground-truth vector name. Flows
// must arrive in non-decreasing minute order; earlier flows are dropped.
func (a *Aggregator) Add(rec *netflow.Record, vector string) {
	m := rec.Minute()
	if m < a.cur {
		return
	}
	if m > a.cur {
		a.flushMinute()
		a.cur = m
	}
	a.add(rec, vector, m)
}

// AddBatch feeds a batch of flows; vectors may be nil or must align with
// recs. One batch call amortizes the minute check and tagger dispatch that
// Add pays per record.
func (a *Aggregator) AddBatch(recs []netflow.Record, vectors []string) {
	for i := range recs {
		m := recs[i].Minute()
		if m < a.cur {
			continue
		}
		if m > a.cur {
			a.flushMinute()
			a.cur = m
		}
		v := ""
		if vectors != nil {
			v = vectors[i]
		}
		a.add(&recs[i], v, m)
	}
}

func (a *Aggregator) add(rec *netflow.Record, vector string, m int64) {
	a.shards[a.shardIndex(rec.DstIP)].add(a.Tagger, rec, vector, m)
}

// add feeds one flow into this shard. It touches only shard-owned state, so
// the parallel ingest path can run it on a dedicated goroutine per shard.
func (s *shardState) add(tagger *tagging.Tagger, rec *netflow.Record, vector string, m int64) {
	if s.sk != nil {
		g := s.sk.add(rec, m)
		if g == nil {
			return // not admitted: absorbed by the admission sketch only
		}
		g.flows++
		if rec.Blackholed {
			g.label = true
		}
		if vector != "" {
			g.vec[vector]++
		}
		g.observe(rec)
		if tagger != nil {
			s.hits = tagger.Match(rec, s.hits[:0])
			for _, i := range s.hits {
				g.rules[tagger.Rules()[i].ID] = struct{}{}
			}
		}
		return
	}
	g := s.groups[rec.DstIP]
	if g == nil {
		if n := len(s.free); n > 0 {
			g = s.free[n-1]
			s.free = s.free[:n-1]
			g.reset(m, rec.DstIP)
		} else {
			g = &group{
				minute: m,
				target: rec.DstIP,
				rules:  make(map[string]struct{}),
				vec:    make(map[string]int),
			}
			for c := range g.acc {
				g.acc[c] = make(map[uint64][2]uint64)
			}
		}
		s.groups[rec.DstIP] = g
	}
	g.flows++
	if rec.Blackholed {
		g.label = true
	}
	if vector != "" {
		g.vec[vector]++
	}
	for c := 0; c < NumCats; c++ {
		k := catKey(c, rec)
		bp := g.acc[c][k]
		bp[0] += rec.Bytes
		bp[1] += rec.Packets
		g.acc[c][k] = bp
	}
	if tagger != nil {
		s.hits = tagger.Match(rec, s.hits[:0])
		for _, i := range s.hits {
			g.rules[tagger.Rules()[i].ID] = struct{}{}
		}
	}
}

// Close flushes the final minute.
func (a *Aggregator) Close() { a.flushMinute() }

func (a *Aggregator) flushMinute() {
	if a.shards[0].sk != nil {
		a.flushSketch()
		return
	}
	total := 0
	for i := range a.shards {
		total += len(a.shards[i].groups)
	}
	if total == 0 {
		a.Metrics.observeFlush(0, 0, 0)
		return
	}
	// Deterministic emission order across shards: gather every group and
	// sort by target, exactly like the unsharded implementation did.
	groups := make([]*group, 0, total)
	for i := range a.shards {
		for _, g := range a.shards[i].groups {
			groups = append(groups, g)
		}
		clear(a.shards[i].groups)
	}
	sort.Slice(groups, func(i, j int) bool {
		return groups[i].target.Compare(groups[j].target) < 0
	})

	if cap(a.finish) < total {
		a.finish = make([]*Aggregate, total)
	}
	out := a.finish[:total]
	workers := par.Workers(a.Workers)
	if total < 16 {
		workers = 1 // fan-out costs more than ranking a handful of groups
	}
	// Ranking one group touches only that group; results land in the
	// slot matching the sorted order, so output is independent of both
	// worker count and shard count.
	par.ForChunks(workers, total, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = groups[i].finish()
		}
	})
	for i, agg := range out {
		if a.Emit != nil {
			a.Emit(agg)
		}
		out[i] = nil
		s := &a.shards[a.shardIndex(groups[i].target)]
		s.free = append(s.free, groups[i])
	}
	a.Metrics.observeFlush(float64(total), 0, 0)
}

// topEntry is one candidate in a (categorical, metric) ranking.
type topEntry struct {
	key uint64
	met float64
}

// outranks is the ranking order of §5.2.1: metric descending with
// deterministic ties broken by key ascending. It is the exact comparator
// the pre-sharding full sort used, so bounded selection under it keeps
// precisely the same R entries.
func outranks(met float64, key uint64, e topEntry) bool {
	if met != e.met {
		return met > e.met
	}
	return key < e.key
}

// topK is a bounded min-heap of the best R entries seen so far: the root is
// the weakest kept entry, so a streaming offer is O(1) for the common
// "not in the top R" case and O(log R) otherwise — replacing the full
// O(n log n) sort per (categorical, metric) with one O(n log R) scan.
type topK struct {
	n int
	e [R]topEntry
}

func (t *topK) offer(key uint64, met float64) {
	if t.n < R {
		t.e[t.n] = topEntry{key: key, met: met}
		t.n++
		// Sift up: a parent must not outrank its children from below —
		// the heap keeps the weakest entry at the root.
		for i := t.n - 1; i > 0; {
			p := (i - 1) / 2
			if !outranks(t.e[p].met, t.e[p].key, t.e[i]) {
				break
			}
			t.e[p], t.e[i] = t.e[i], t.e[p]
			i = p
		}
		return
	}
	if !outranks(met, key, t.e[0]) {
		return // weaker than the weakest kept entry
	}
	t.e[0] = topEntry{key: key, met: met}
	// Sift down to restore the weakest-at-root invariant.
	for i := 0; ; {
		c := 2*i + 1
		if c >= R {
			break
		}
		if r := c + 1; r < R && outranks(t.e[c].met, t.e[c].key, t.e[r]) {
			c = r
		}
		if !outranks(t.e[i].met, t.e[i].key, t.e[c]) {
			break
		}
		t.e[i], t.e[c] = t.e[c], t.e[i]
		i = c
	}
}

// ranked sorts the kept entries into emission order (rank 0 strongest).
// Insertion sort: n is at most R = 5.
func (t *topK) ranked() []topEntry {
	for i := 1; i < t.n; i++ {
		for j := i; j > 0 && outranks(t.e[j].met, t.e[j].key, t.e[j-1]); j-- {
			t.e[j], t.e[j-1] = t.e[j-1], t.e[j]
		}
	}
	return t.e[:t.n]
}

func (g *group) finish() *Aggregate {
	agg := &Aggregate{
		Minute: g.minute,
		Target: g.target,
		Label:  g.label,
		Flows:  g.flows,
	}
	var tops [NumMets]topK
	for c := 0; c < NumCats; c++ {
		for m := range tops {
			tops[m] = topK{}
		}
		// One streaming pass per categorical: every accumulated value is
		// offered to all three metric rankings at once, instead of three
		// scratch rebuilds + full sorts over the same map.
		for k, bp := range g.acc[c] {
			fb := float64(bp[0])
			fp := float64(bp[1])
			ps := 0.0
			if bp[1] != 0 {
				ps = fb / fp
			}
			tops[MetPktSize].offer(k, ps)
			tops[MetBytes].offer(k, fb)
			tops[MetPackets].offer(k, fp)
		}
		for m := 0; m < NumMets; m++ {
			for r, e := range tops[m].ranked() {
				agg.Keys[c][m][r] = e.key
				agg.Present[c][m][r] = true
				agg.Mets[c][m][r] = e.met
			}
		}
		agg.Distinct[c] = float64(len(g.acc[c]))
	}
	if len(g.rules) > 0 {
		agg.RuleIDs = make([]string, 0, len(g.rules))
		for id := range g.rules {
			agg.RuleIDs = append(agg.RuleIDs, id)
		}
		sort.Strings(agg.RuleIDs)
	}
	best, bestN := "", 0
	for v, n := range g.vec {
		if n > bestN || (n == bestN && v < best) {
			best, bestN = v, n
		}
	}
	agg.Vector = best
	return agg
}

// ObserveRecord feeds one balanced flow record's categorical values into
// the WoE encoder under the record's blackhole label. WoE statistics are
// fitted at the flow level (§5.2.2 maps values to their weight of evidence
// of "appearing in the blackhole"), not per aggregate: per-aggregate
// observation would flatten low-cardinality domains — both TCP and UDP
// appear in nearly every aggregate, so their per-aggregate WoE collapses to
// noise around zero, while their flow-level WoE carries the strong
// UDP-means-attack signal that transfers between vantage points.
func ObserveRecord(enc *woe.Encoder, rec *netflow.Record) {
	for c := 0; c < NumCats; c++ {
		enc.Observe(CatNames[c], catKey(c, rec), rec.Blackholed)
	}
}

// Encode converts an aggregate into its 150-column feature row: categorical
// slots become WoE values, metric slots stay numeric; missing slots are NaN
// (imputed to -1 by the pipeline's I stage).
func Encode(enc *woe.Encoder, agg *Aggregate, dst []float64) []float64 {
	dst = dst[:0]
	for c := 0; c < NumCats; c++ {
		for m := 0; m < NumMets; m++ {
			for r := 0; r < R; r++ {
				if agg.Present[c][m][r] {
					dst = append(dst, enc.WoE(CatNames[c], agg.Keys[c][m][r]), agg.Mets[c][m][r])
				} else {
					dst = append(dst, math.NaN(), math.NaN())
				}
			}
		}
	}
	return dst
}
