// Package features implements the Step 2 aggregation of §5.2.1: flows are
// grouped per <one-minute bin, target IP> and the categorical flow
// properties C = {source IP, source port, destination port, source MAC,
// transport protocol} are ranked by the metrics M = {mean packet size, sum
// of bytes, sum of packets} with r = 5 ranks. Each ranking stores both the
// categorical value and the aggregated metric, giving |M|·|C|·2r = 150
// feature columns; categorical slots are WoE-encoded before reaching a
// classifier.
//
// Matching tagging rules are annotated onto every aggregate (but never used
// as classifier features — that would leak Step 1 labels), enabling the
// local explainability overlap analysis of §6.6.
package features

import (
	"fmt"
	"math"
	"net/netip"
	"sort"

	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/tagging"
	"github.com/ixp-scrubber/ixpscrubber/internal/woe"
)

// Ranking geometry (paper values).
const (
	// R is the number of ranks kept per (categorical, metric) pair.
	R = 5
	// NumCats is |C|.
	NumCats = 5
	// NumMets is |M|.
	NumMets = 3
	// NumColumns is the total feature column count (150).
	NumColumns = NumCats * NumMets * R * 2
)

// Categorical identifiers, ordered as in the paper's feature notation.
const (
	CatSrcIP = iota
	CatSrcPort
	CatDstPort
	CatSrcMAC
	CatProto
)

// Metric identifiers.
const (
	MetPktSize = iota // mean packet size
	MetBytes          // sum of bytes
	MetPackets        // sum of packets
)

// CatNames are the WoE domain names per categorical.
var CatNames = [NumCats]string{"src_ip", "port_src", "port_dst", "src_mac", "protocol"}

// MetNames name the ranking metrics.
var MetNames = [NumMets]string{"pkt_size", "bytes", "packets"}

// Aggregate is one per-<minute, target IP> record: the top-R categorical
// values per metric with their metric values, the blackhole label, and the
// annotated tagging rules.
type Aggregate struct {
	Minute int64
	Target netip.Addr
	Label  bool

	// Keys[cat][met][rank] is the WoE key of the ranked categorical value;
	// Present marks filled slots; Mets carries the metric value.
	Keys    [NumCats][NumMets][R]uint64
	Present [NumCats][NumMets][R]bool
	Mets    [NumCats][NumMets][R]float64

	// RuleIDs are the tagging rules matched by at least one flow of this
	// aggregate (annotation only; see package comment).
	RuleIDs []string
	// Vector is the dominant ground-truth attack vector among the flows
	// (experiments only; empty in production where truth is unknown).
	Vector string
	// Flows is the number of flow records aggregated.
	Flows int
}

// ColumnName formats a feature column the way Figure 10 labels them:
// categorical/metric/rank, with a "@" suffix on the metric column.
func ColumnName(cat, met, rank int, isMetric bool) string {
	base := fmt.Sprintf("%s/%s/%d", CatNames[cat], MetNames[met], rank)
	if isMetric {
		return base + "@val"
	}
	return base
}

// ColumnNames returns all 150 column names in encoding order.
func ColumnNames() []string {
	names := make([]string, 0, NumColumns)
	for c := 0; c < NumCats; c++ {
		for m := 0; m < NumMets; m++ {
			for r := 0; r < R; r++ {
				names = append(names, ColumnName(c, m, r, false))
				names = append(names, ColumnName(c, m, r, true))
			}
		}
	}
	return names
}

// catKey extracts the WoE key of a categorical from a flow record.
func catKey(cat int, rec *netflow.Record) uint64 {
	switch cat {
	case CatSrcIP:
		return woe.KeyAddr(rec.SrcIP)
	case CatSrcPort:
		return woe.KeyPort(rec.SrcPort)
	case CatDstPort:
		return woe.KeyPort(rec.DstPort)
	case CatSrcMAC:
		return woe.KeyMAC(rec.SrcMAC)
	default:
		return woe.KeyProto(rec.Protocol)
	}
}

// group accumulates the flows of one <minute, target>.
type group struct {
	minute int64
	target netip.Addr
	label  bool
	// per categorical: value -> (bytes, packets)
	acc   [NumCats]map[uint64][2]uint64
	rules map[string]struct{}
	vec   map[string]int
	flows int
}

// Aggregator groups a minute-ordered flow stream. Call Add per flow, then
// FlushMinute when a minute completes (or rely on automatic flushing when
// the minute advances), and Close at the end.
type Aggregator struct {
	// Tagger, when set, annotates matching rule IDs onto aggregates.
	Tagger *tagging.Tagger
	// Emit receives completed aggregates.
	Emit func(*Aggregate)

	cur    int64
	groups map[netip.Addr]*group
	hits   []int
}

// NewAggregator returns an Aggregator emitting into emit.
func NewAggregator(tagger *tagging.Tagger, emit func(*Aggregate)) *Aggregator {
	return &Aggregator{
		Tagger: tagger,
		Emit:   emit,
		cur:    math.MinInt64,
		groups: make(map[netip.Addr]*group),
	}
}

// Add feeds one flow with its (optional) ground-truth vector name. Flows
// must arrive in non-decreasing minute order; earlier flows are dropped.
func (a *Aggregator) Add(rec *netflow.Record, vector string) {
	m := rec.Minute()
	if m < a.cur {
		return
	}
	if m > a.cur {
		a.flush()
		a.cur = m
	}
	g := a.groups[rec.DstIP]
	if g == nil {
		g = &group{
			minute: m,
			target: rec.DstIP,
			rules:  make(map[string]struct{}),
			vec:    make(map[string]int),
		}
		for c := range g.acc {
			g.acc[c] = make(map[uint64][2]uint64)
		}
		a.groups[rec.DstIP] = g
	}
	g.flows++
	if rec.Blackholed {
		g.label = true
	}
	if vector != "" {
		g.vec[vector]++
	}
	for c := 0; c < NumCats; c++ {
		k := catKey(c, rec)
		bp := g.acc[c][k]
		bp[0] += rec.Bytes
		bp[1] += rec.Packets
		g.acc[c][k] = bp
	}
	if a.Tagger != nil {
		a.hits = a.hits[:0]
		a.hits = a.Tagger.Match(rec, a.hits)
		for _, i := range a.hits {
			g.rules[a.Tagger.Rules()[i].ID] = struct{}{}
		}
	}
}

// Close flushes the final minute.
func (a *Aggregator) Close() { a.flush() }

func (a *Aggregator) flush() {
	if len(a.groups) == 0 {
		return
	}
	// Deterministic emission order.
	targets := make([]netip.Addr, 0, len(a.groups))
	for t := range a.groups {
		targets = append(targets, t)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].Compare(targets[j]) < 0 })
	for _, t := range targets {
		agg := a.groups[t].finish()
		if a.Emit != nil {
			a.Emit(agg)
		}
	}
	clear(a.groups)
}

type kv struct {
	key   uint64
	bytes uint64
	pkts  uint64
	met   float64 // current ranking metric, precomputed before each sort
}

func (g *group) finish() *Aggregate {
	agg := &Aggregate{
		Minute: g.minute,
		Target: g.target,
		Label:  g.label,
		Flows:  g.flows,
	}
	var scratch []kv
	for c := 0; c < NumCats; c++ {
		scratch = scratch[:0]
		for k, bp := range g.acc[c] {
			scratch = append(scratch, kv{key: k, bytes: bp[0], pkts: bp[1]})
		}
		for m := 0; m < NumMets; m++ {
			// Precompute the metric column once per (categorical, metric):
			// computing it inside the comparator would redo the division
			// O(n log n) times per sort.
			for i := range scratch {
				e := &scratch[i]
				switch m {
				case MetPktSize:
					if e.pkts == 0 {
						e.met = 0
					} else {
						e.met = float64(e.bytes) / float64(e.pkts)
					}
				case MetBytes:
					e.met = float64(e.bytes)
				default:
					e.met = float64(e.pkts)
				}
			}
			sort.Slice(scratch, func(i, j int) bool {
				if scratch[i].met != scratch[j].met {
					return scratch[i].met > scratch[j].met
				}
				return scratch[i].key < scratch[j].key // deterministic ties
			})
			for r := 0; r < R && r < len(scratch); r++ {
				agg.Keys[c][m][r] = scratch[r].key
				agg.Present[c][m][r] = true
				agg.Mets[c][m][r] = scratch[r].met
			}
		}
	}
	if len(g.rules) > 0 {
		agg.RuleIDs = make([]string, 0, len(g.rules))
		for id := range g.rules {
			agg.RuleIDs = append(agg.RuleIDs, id)
		}
		sort.Strings(agg.RuleIDs)
	}
	best, bestN := "", 0
	for v, n := range g.vec {
		if n > bestN || (n == bestN && v < best) {
			best, bestN = v, n
		}
	}
	agg.Vector = best
	return agg
}

// ObserveRecord feeds one balanced flow record's categorical values into
// the WoE encoder under the record's blackhole label. WoE statistics are
// fitted at the flow level (§5.2.2 maps values to their weight of evidence
// of "appearing in the blackhole"), not per aggregate: per-aggregate
// observation would flatten low-cardinality domains — both TCP and UDP
// appear in nearly every aggregate, so their per-aggregate WoE collapses to
// noise around zero, while their flow-level WoE carries the strong
// UDP-means-attack signal that transfers between vantage points.
func ObserveRecord(enc *woe.Encoder, rec *netflow.Record) {
	for c := 0; c < NumCats; c++ {
		enc.Observe(CatNames[c], catKey(c, rec), rec.Blackholed)
	}
}

// Encode converts an aggregate into its 150-column feature row: categorical
// slots become WoE values, metric slots stay numeric; missing slots are NaN
// (imputed to -1 by the pipeline's I stage).
func Encode(enc *woe.Encoder, agg *Aggregate, dst []float64) []float64 {
	dst = dst[:0]
	for c := 0; c < NumCats; c++ {
		for m := 0; m < NumMets; m++ {
			for r := 0; r < R; r++ {
				if agg.Present[c][m][r] {
					dst = append(dst, enc.WoE(CatNames[c], agg.Keys[c][m][r]), agg.Mets[c][m][r])
				} else {
					dst = append(dst, math.NaN(), math.NaN())
				}
			}
		}
	}
	return dst
}
