package features

import (
	"math"
	"net/netip"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/balance"
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
	"github.com/ixp-scrubber/ixpscrubber/internal/tagging"
	"github.com/ixp-scrubber/ixpscrubber/internal/woe"
)

func flow(min int64, src string, srcPort uint16, dst string, bytes, pkts uint64, bh bool) netflow.Record {
	return netflow.Record{
		Timestamp: min * 60,
		SrcIP:     netip.MustParseAddr(src),
		DstIP:     netip.MustParseAddr(dst),
		SrcPort:   srcPort,
		DstPort:   44000,
		Protocol:  17,
		SrcMAC:    [6]byte{2, 0, 0, 0, 0, 1},
		Packets:   pkts,
		Bytes:     bytes,
		Blackholed: bh,
	}
}

func collect(aggs *[]*Aggregate) func(*Aggregate) {
	return func(a *Aggregate) { *aggs = append(*aggs, a) }
}

func TestColumnGeometry(t *testing.T) {
	names := ColumnNames()
	if len(names) != NumColumns || NumColumns != 150 {
		t.Fatalf("column count = %d, want 150", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate column %q", n)
		}
		seen[n] = true
	}
	if ColumnName(CatSrcPort, MetBytes, 0, false) != "port_src/bytes/0" {
		t.Errorf("naming = %q", ColumnName(CatSrcPort, MetBytes, 0, false))
	}
}

func TestAggregatorGroupsByMinuteAndTarget(t *testing.T) {
	var aggs []*Aggregate
	a := NewAggregator(nil, collect(&aggs))
	// Minute 1: two targets.
	a.Add(&netflow.Record{}, "") // zero record: invalid addr still groups; keep simple with real ones below
	aggs = aggs[:0]

	a = NewAggregator(nil, collect(&aggs))
	r1 := flow(1, "192.0.2.1", 123, "198.51.100.7", 4096, 2, true)
	r2 := flow(1, "192.0.2.2", 123, "198.51.100.7", 2048, 1, false)
	r3 := flow(1, "192.0.2.1", 53, "203.0.113.5", 1024, 1, false)
	r4 := flow(2, "192.0.2.1", 123, "198.51.100.7", 4096, 2, false)
	for _, r := range []*netflow.Record{&r1, &r2, &r3, &r4} {
		a.Add(r, "")
	}
	a.Close()
	if len(aggs) != 3 {
		t.Fatalf("aggregates = %d, want 3", len(aggs))
	}
	// First two aggregates are minute 1 sorted by target.
	if aggs[0].Minute != 1 || aggs[1].Minute != 1 || aggs[2].Minute != 2 {
		t.Errorf("minutes = %d %d %d", aggs[0].Minute, aggs[1].Minute, aggs[2].Minute)
	}
	var victim *Aggregate
	for _, ag := range aggs {
		if ag.Minute == 1 && ag.Target == netip.MustParseAddr("198.51.100.7") {
			victim = ag
		}
	}
	if victim == nil {
		t.Fatal("victim aggregate missing")
	}
	if !victim.Label {
		t.Error("one blackholed flow must label the aggregate")
	}
	if victim.Flows != 2 {
		t.Errorf("flows = %d", victim.Flows)
	}
	// Top source IP by bytes is 192.0.2.1 (4096 > 2048).
	wantKey := woe.KeyAddr(netip.MustParseAddr("192.0.2.1"))
	if victim.Keys[CatSrcIP][MetBytes][0] != wantKey {
		t.Error("ranking top-1 by bytes wrong")
	}
	if victim.Mets[CatSrcIP][MetBytes][0] != 4096 {
		t.Errorf("metric value = %v", victim.Mets[CatSrcIP][MetBytes][0])
	}
	if !victim.Present[CatSrcIP][MetBytes][1] || victim.Present[CatSrcIP][MetBytes][2] {
		t.Error("presence mask: want exactly 2 source IPs present")
	}
	// Mean packet size ranking: r1 mean=2048, r2 mean=2048 — tie broken by key.
	if !victim.Present[CatSrcIP][MetPktSize][1] {
		t.Error("pkt size ranking missing second entry")
	}
}

func TestAggregatorLateFlowsDropped(t *testing.T) {
	var aggs []*Aggregate
	a := NewAggregator(nil, collect(&aggs))
	r1 := flow(5, "192.0.2.1", 123, "198.51.100.7", 1024, 1, false)
	r0 := flow(4, "192.0.2.9", 99, "198.51.100.8", 1024, 1, false)
	a.Add(&r1, "")
	a.Add(&r0, "") // late: dropped
	a.Close()
	if len(aggs) != 1 {
		t.Fatalf("aggregates = %d", len(aggs))
	}
}

func TestRuleAnnotation(t *testing.T) {
	rule := tagging.Rule{
		ID: "ntp-rule",
		Antecedent: []tagging.Item{
			tagging.NewItem(tagging.FieldProtocol, 17),
			tagging.NewItem(tagging.FieldSrcPort, 123),
		},
	}
	tg := tagging.NewTagger([]tagging.Rule{rule})
	var aggs []*Aggregate
	a := NewAggregator(tg, collect(&aggs))
	r1 := flow(1, "192.0.2.1", 123, "198.51.100.7", 4096, 2, true)
	r2 := flow(1, "192.0.2.1", 8080, "203.0.113.5", 4096, 2, false)
	a.Add(&r1, "NTP")
	a.Add(&r2, "")
	a.Close()
	if len(aggs) != 2 {
		t.Fatal("aggregates")
	}
	for _, ag := range aggs {
		if ag.Target == netip.MustParseAddr("198.51.100.7") {
			if len(ag.RuleIDs) != 1 || ag.RuleIDs[0] != "ntp-rule" {
				t.Errorf("rules = %v", ag.RuleIDs)
			}
			if ag.Vector != "NTP" {
				t.Errorf("vector = %q", ag.Vector)
			}
		} else if len(ag.RuleIDs) != 0 {
			t.Errorf("benign aggregate annotated: %v", ag.RuleIDs)
		}
	}
}

func TestEncodeShapeAndMissing(t *testing.T) {
	var aggs []*Aggregate
	a := NewAggregator(nil, collect(&aggs))
	r1 := flow(1, "192.0.2.1", 123, "198.51.100.7", 4096, 2, true)
	a.Add(&r1, "")
	a.Close()
	enc := woe.NewEncoder()
	ObserveRecord(enc, &r1)
	row := Encode(enc, aggs[0], nil)
	if len(row) != NumColumns {
		t.Fatalf("row len = %d", len(row))
	}
	// One flow: rank 0 present, ranks 1-4 missing -> NaN.
	if math.IsNaN(row[0]) {
		t.Error("rank-0 categorical must be present")
	}
	if !math.IsNaN(row[2]) {
		t.Error("rank-1 slot must be NaN with a single value")
	}
	// Metric slot for src_ip/pkt_size/0 is 2048.
	if row[1] != 2048 {
		t.Errorf("metric slot = %v", row[1])
	}
}

func TestObserveEncodesLabelSignal(t *testing.T) {
	enc := woe.NewEncoder()
	// Reflector 192.0.2.1 always attacks (label true), 192.0.2.9 is benign.
	for min := int64(1); min <= 40; min++ {
		r1 := flow(min, "192.0.2.1", 123, "198.51.100.7", 4096, 2, true)
		r2 := flow(min, "192.0.2.9", 443, "203.0.113.5", 2048, 2, false)
		ObserveRecord(enc, &r1)
		ObserveRecord(enc, &r2)
	}
	attacker := enc.WoE("src_ip", woe.KeyAddr(netip.MustParseAddr("192.0.2.1")))
	benign := enc.WoE("src_ip", woe.KeyAddr(netip.MustParseAddr("192.0.2.9")))
	if attacker <= 1 {
		t.Errorf("attacker WoE = %v, want > 1", attacker)
	}
	if benign >= -1 {
		t.Errorf("benign WoE = %v, want < -1", benign)
	}
	port123 := enc.WoE("port_src", woe.KeyPort(123))
	if port123 <= 0 {
		t.Errorf("NTP port WoE = %v", port123)
	}
}

// TestEndToEndSyntheticSeparability: aggregates from balanced synthetic
// traffic, WoE-encoded, must carry enough signal that even a trivial
// threshold on the summed WoE separates most labels.
func TestEndToEndSyntheticSeparability(t *testing.T) {
	g := synth.NewGenerator(synth.ProfileUS1())
	flows := g.Generate(0, 240)
	balanced, _ := balance.Flows(1, flows)

	var aggs []*Aggregate
	a := NewAggregator(nil, collect(&aggs))
	for i := range balanced {
		a.Add(&balanced[i].Record, balanced[i].Vector)
	}
	a.Close()
	if len(aggs) < 50 {
		t.Fatalf("aggregates = %d", len(aggs))
	}
	enc := woe.NewEncoder()
	for i := range balanced {
		ObserveRecord(enc, &balanced[i].Record)
	}
	correct := 0
	for _, ag := range aggs {
		row := Encode(enc, ag, nil)
		var sum float64
		for i := 0; i < len(row); i += 2 { // categorical slots only
			if !math.IsNaN(row[i]) {
				sum += row[i]
			}
		}
		pred := sum > 0
		if pred == ag.Label {
			correct++
		}
	}
	acc := float64(correct) / float64(len(aggs))
	if acc < 0.85 {
		t.Errorf("naive WoE-sum accuracy = %.3f, want > 0.85 (in-sample encoding)", acc)
	}
}

func BenchmarkAggregate(b *testing.B) {
	g := synth.NewGenerator(synth.ProfileUS1())
	flows := g.Generate(0, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := NewAggregator(nil, nil)
		for j := range flows {
			a.Add(&flows[j].Record, "")
		}
		a.Close()
	}
}

func BenchmarkEncode(b *testing.B) {
	g := synth.NewGenerator(synth.ProfileUS1())
	flows := g.Generate(0, 5)
	var aggs []*Aggregate
	a := NewAggregator(nil, collect(&aggs))
	for j := range flows {
		a.Add(&flows[j].Record, "")
	}
	a.Close()
	enc := woe.NewEncoder()
	for j := range flows {
		ObserveRecord(enc, &flows[j].Record)
	}
	var row []float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row = Encode(enc, aggs[i%len(aggs)], row)
	}
}
