package features

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
)

// ringSize is the per-shard SPSC ring capacity (power of two). 1024 slots ×
// ~120 bytes/slot keeps each ring well under a megabyte while absorbing
// bursty batches.
const ringSize = 1024

// ringSlot carries one partitioned flow to a shard consumer. The record is
// copied in, so callers may reuse their batch slices immediately.
type ringSlot struct {
	rec    netflow.Record
	vec    string
	minute int64
}

// spscRing is a single-producer single-consumer ring buffer: the ingest
// goroutine owns tail, a shard consumer owns head, and the two atomics are
// padded onto separate cache lines so publication doesn't false-share. The
// producer batches tail publication (once per AddBatch, or before blocking on
// a full ring), which keeps the common path to plain slot stores.
type spscRing struct {
	buf  []ringSlot
	mask uint64

	// producer-owned (no atomics needed on these)
	tailLocal uint64
	headCache uint64

	_    [64]byte
	head atomic.Uint64 // consumer position: everything below is processed
	_    [64]byte
	tail atomic.Uint64 // published producer position
	_    [64]byte
	stop atomic.Bool
}

func newSPSCRing() *spscRing {
	return &spscRing{buf: make([]ringSlot, ringSize), mask: ringSize - 1}
}

// push enqueues one slot, publishing and spinning if the ring is full.
func (r *spscRing) push(rec *netflow.Record, vec string, minute int64) {
	for r.tailLocal-r.headCache >= uint64(len(r.buf)) {
		r.headCache = r.head.Load()
		if r.tailLocal-r.headCache < uint64(len(r.buf)) {
			break
		}
		// Full: the consumer can only drain what has been published.
		r.tail.Store(r.tailLocal)
		runtime.Gosched()
	}
	s := &r.buf[r.tailLocal&r.mask]
	s.rec = *rec
	s.vec = vec
	s.minute = minute
	r.tailLocal++
}

// publish makes every pushed slot visible to the consumer.
func (r *spscRing) publish() { r.tail.Store(r.tailLocal) }

// drained reports whether the consumer has processed every published slot.
func (r *spscRing) drained() bool { return r.head.Load() == r.tailLocal }

// ParallelAggregator is an Aggregator front-end that partitions ingest
// across per-shard consumer goroutines over SPSC rings: the caller
// goroutine hashes and hands off records, each shard consumer runs the same
// shardState.add the serial path uses, and minute flushes happen on the
// caller goroutine behind a drain barrier. Emission is therefore
// single-threaded and bit-for-bit identical to the serial Aggregator at the
// same shard count and sketch configuration.
//
// AddBatch and Close must be called from one goroutine (the producer).
type ParallelAggregator struct {
	agg   *Aggregator
	rings []*spscRing
	wg    sync.WaitGroup
}

// NewParallelAggregator wraps agg with per-shard ingest goroutines. The
// aggregator must not be used directly afterwards except through the
// returned wrapper.
func NewParallelAggregator(agg *Aggregator) *ParallelAggregator {
	p := &ParallelAggregator{
		agg:   agg,
		rings: make([]*spscRing, len(agg.shards)),
	}
	for i := range p.rings {
		p.rings[i] = newSPSCRing()
	}
	p.wg.Add(len(p.rings))
	for i := range p.rings {
		go p.consume(i)
	}
	return p
}

// consume is one shard's ingest loop.
func (p *ParallelAggregator) consume(i int) {
	defer p.wg.Done()
	r := p.rings[i]
	s := &p.agg.shards[i]
	tagger := p.agg.Tagger
	h := r.head.Load()
	for {
		t := r.tail.Load()
		if t == h {
			if r.stop.Load() && r.tail.Load() == h {
				return
			}
			runtime.Gosched()
			continue
		}
		for ; h != t; h++ {
			sl := &r.buf[h&r.mask]
			s.add(tagger, &sl.rec, sl.vec, sl.minute)
			sl.vec = "" // release the string for GC
		}
		r.head.Store(h)
	}
}

// barrier publishes all pending slots and waits until every shard consumer
// has drained its ring. On return, all shard state written by consumers is
// visible to the caller (the head/tail atomics order the accesses).
func (p *ParallelAggregator) barrier() {
	for _, r := range p.rings {
		r.publish()
	}
	for _, r := range p.rings {
		for !r.drained() {
			runtime.Gosched()
		}
	}
}

// Add feeds one flow. See AddBatch.
func (p *ParallelAggregator) Add(rec *netflow.Record, vector string) {
	p.addOne(rec, vector)
	p.rings[p.agg.shardIndex(rec.DstIP)].publish()
}

// AddBatch partitions a batch across the shard rings. Flows must arrive in
// non-decreasing minute order; earlier flows are dropped, and a minute
// advance drains all shards and flushes on the calling goroutine, exactly
// like the serial path.
func (p *ParallelAggregator) AddBatch(recs []netflow.Record, vectors []string) {
	for i := range recs {
		v := ""
		if vectors != nil {
			v = vectors[i]
		}
		p.addOne(&recs[i], v)
	}
	for _, r := range p.rings {
		r.publish()
	}
}

func (p *ParallelAggregator) addOne(rec *netflow.Record, vector string) {
	m := rec.Minute()
	if m < p.agg.cur {
		return
	}
	if m > p.agg.cur {
		p.barrier()
		p.agg.flushMinute()
		p.agg.cur = m
	}
	p.rings[p.agg.shardIndex(rec.DstIP)].push(rec, vector, m)
}

// Close drains every shard, flushes the final minute and stops the
// consumers.
func (p *ParallelAggregator) Close() {
	p.barrier()
	for _, r := range p.rings {
		r.stop.Store(true)
	}
	p.wg.Wait()
	p.agg.flushMinute()
}
