package features

import (
	"fmt"
	"math/rand"
	"net/netip"
	"reflect"
	"runtime"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/tagging"
)

// TestParallelAggregatorEquivalence locks the SPSC-ring ingest path to the
// serial aggregator: identical emissions in identical order, across shard
// counts, exact and sketch modes, with and without a tagger.
func TestParallelAggregatorEquivalence(t *testing.T) {
	recs, vecs := equivalenceFlows(t, 25)
	// Splice a late record mid-stream to exercise the producer's drop path.
	late := recs[0]
	late.Timestamp = 0
	recs = append(recs[:len(recs):len(recs)], late)
	vecs = append(vecs[:len(vecs):len(vecs)], "")

	rules := []tagging.Rule{
		{ID: "udp", Antecedent: []tagging.Item{tagging.NewItem(tagging.FieldProtocol, 17)}},
	}
	for _, mode := range []string{"exact", "sketch"} {
		var cfg *SketchConfig
		if mode == "sketch" {
			cfg = &SketchConfig{Budget: 0.05, MaxGroups: 128}
		}
		for _, withTagger := range []bool{false, true} {
			var tagger *tagging.Tagger
			if withTagger {
				tagger = tagging.NewTagger(rules)
			}
			for _, shards := range []int{1, 4, 16} {
				var want []*Aggregate
				serial := NewAggregatorSketch(tagger, shards, cfg, func(a *Aggregate) { want = append(want, a) })
				serial.AddBatch(recs, vecs)
				serial.Close()

				for _, batch := range []int{1, 64, 4096} {
					var got []*Aggregate
					p := NewParallelAggregator(NewAggregatorSketch(tagger, shards, cfg,
						func(a *Aggregate) { got = append(got, a) }))
					for lo := 0; lo < len(recs); lo += batch {
						hi := min(lo+batch, len(recs))
						p.AddBatch(recs[lo:hi], vecs[lo:hi])
					}
					p.Close()
					if len(got) != len(want) {
						t.Fatalf("%s tagger=%v shards=%d batch=%d: %d aggregates, serial %d",
							mode, withTagger, shards, batch, len(got), len(want))
					}
					for i := range want {
						if !reflect.DeepEqual(got[i], want[i]) {
							t.Fatalf("%s tagger=%v shards=%d batch=%d: aggregate %d differs:\n got: %+v\nwant: %+v",
								mode, withTagger, shards, batch, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestParallelAggregatorRingPressure drives a stream much larger than the
// ring capacity into few shards so producers repeatedly hit full rings, and
// verifies nothing is lost or reordered.
func TestParallelAggregatorRingPressure(t *testing.T) {
	const targets = 8
	var recs []netflow.Record
	for m := int64(1); m <= 3; m++ {
		for i := 0; i < 4*ringSize; i++ {
			recs = append(recs, netflow.Record{
				Timestamp: m * 60,
				SrcIP:     netip.AddrFrom4([4]byte{192, 0, 2, byte(i)}),
				DstIP:     netip.AddrFrom4([4]byte{10, 0, 0, byte(i % targets)}),
				SrcPort:   uint16(1024 + i%50000),
				DstPort:   80,
				Protocol:  6,
				Packets:   3,
				Bytes:     1500,
			})
		}
	}
	var want []*Aggregate
	serial := NewAggregatorShards(nil, 2, func(a *Aggregate) { want = append(want, a) })
	serial.AddBatch(recs, nil)
	serial.Close()

	var got []*Aggregate
	p := NewParallelAggregator(NewAggregatorShards(nil, 2, func(a *Aggregate) { got = append(got, a) }))
	p.AddBatch(recs, nil)
	p.Close()

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ring-pressure run diverged from serial: %d vs %d aggregates", len(got), len(want))
	}
	totalFlows := 0
	for _, a := range got {
		totalFlows += a.Flows
	}
	if totalFlows != len(recs) {
		t.Fatalf("parallel path lost records: %d flows aggregated of %d", totalFlows, len(recs))
	}
}

// benchCardinalityFlows builds `minutes` minutes of traffic at `targets`
// distinct targets per minute with a handful of flows and source values per
// target — the cardinality axis of the BENCH_PR6 matrix.
func benchCardinalityFlows(targets, minutes int) []netflow.Record {
	rng := rand.New(rand.NewSource(11))
	recs := make([]netflow.Record, 0, targets*minutes*3)
	for m := 1; m <= minutes; m++ {
		for tg := 0; tg < targets; tg++ {
			dst := netip.AddrFrom4([4]byte{10, byte(tg >> 16), byte(tg >> 8), byte(tg)})
			for f := 0; f < 3; f++ {
				recs = append(recs, netflow.Record{
					Timestamp: int64(m) * 60,
					SrcIP:     netip.AddrFrom4([4]byte{172, 16, byte(rng.Intn(256)), byte(rng.Intn(256))}),
					DstIP:     dst,
					SrcPort:   uint16(1024 + rng.Intn(60000)),
					DstPort:   uint16(53 + f),
					Protocol:  17,
					SrcMAC:    [6]byte{2, 0, 0, 0, byte(f), byte(tg)},
					Packets:   uint64(1 + rng.Intn(40)),
					Bytes:     uint64(100 + rng.Intn(59000)),
				})
			}
		}
	}
	return recs
}

// heapDelta measures the live-heap growth of running fn, in bytes.
func heapDelta(fn func()) float64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	fn()
	runtime.GC()
	runtime.ReadMemStats(&after)
	return float64(after.HeapAlloc) - float64(before.HeapAlloc)
}

// BenchmarkAggCardinality is the BENCH_PR6 cardinality matrix: minute-flush
// throughput (ns/op over one minute of flows) and peak aggregation heap
// (live bytes while the minute's groups are resident) for the exact and
// sketch paths at 1×/10×/100×/1000× the 512-target baseline. The sketch
// configuration is identical at every cardinality, so its peak-heap column
// staying flat is the bounded-memory claim.
func BenchmarkAggCardinality(b *testing.B) {
	const baseline = 512
	sketchCfg := &SketchConfig{Budget: 0.05, MaxGroups: baseline}
	for _, mode := range []string{"exact", "sketch"} {
		for _, mult := range []int{1, 10, 100, 1000} {
			b.Run(fmt.Sprintf("%s/x%d", mode, mult), func(b *testing.B) {
				recs := benchCardinalityFlows(baseline*mult, 1)
				build := func() *Aggregator {
					if mode == "sketch" {
						return NewAggregatorSketch(nil, 1, sketchCfg, nil)
					}
					return NewAggregatorShards(nil, 1, nil)
				}
				// Peak heap: all of the minute's groups resident, pre-flush.
				pinned := build()
				peak := heapDelta(func() { pinned.AddBatch(recs, nil) })
				pinned.Close()
				runtime.KeepAlive(pinned)

				// Throughput is steady-state: a long-lived aggregator whose
				// groups recycle minute over minute, which is how every
				// production caller holds it. One op = one minute ingested
				// plus the previous minute's flush.
				a := build()
				a.AddBatch(recs, nil) // warm pools and maps
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for j := range recs {
						recs[j].Timestamp += 60
					}
					a.AddBatch(recs, nil)
				}
				b.StopTimer()
				a.Close()
				// ResetTimer deletes user metrics, so report after the loop.
				b.ReportMetric(peak, "peak-heap-bytes")
				b.ReportMetric(float64(len(recs)), "flows/op")
			})
		}
	}
}

// BenchmarkParallelIngest is the BENCH_PR6 GOMAXPROCS scaling matrix: the
// full ingest-to-flush pipeline (SPSC handoff, per-shard aggregation,
// barrier flush) at 1, 2, 4 and 8 procs, shards tied to procs via shardsFor.
// On a 1-core box the >1 rows measure oversubscription, which is exactly the
// regression BENCH_PR1 exposed and this matrix exists to track.
func BenchmarkParallelIngest(b *testing.B) {
	recs := benchCardinalityFlows(512, 4)
	for _, procs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := NewParallelAggregator(NewAggregatorShards(nil, shardsFor(procs), nil))
				p.AddBatch(recs, nil)
				p.Close()
			}
			b.ReportMetric(float64(len(recs)), "flows/op")
		})
	}
}
