package features

import (
	"encoding/binary"
	"fmt"
	"math"
	"net/netip"
	"sort"

	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/par"
	"github.com/ixp-scrubber/ixpscrubber/internal/sketch"
)

// SketchConfig enables the bounded-memory aggregation mode and declares its
// exactness budget. The zero value of every field selects a default derived
// from Budget; a nil *SketchConfig means exact aggregation.
//
// Error budget semantics: Budget is the relative error ε the sketch path may
// introduce. It derives the space-saving summary size K = max(2R, ceil(1/ε))
// (any categorical value carrying more than ε of a group's traffic is
// guaranteed a summary slot, so heavy hitters are never lost, only
// over-counted by at most their recorded admission error) and the HyperLogLog
// precision (standard error ≤ ε, clamped to at most 12 so one per-group
// counter stays ≤ 4 KiB). Targets themselves are admitted space-saving style
// against a per-shard count-min estimate, so the heaviest ~MaxGroups targets
// of each minute are always resident.
type SketchConfig struct {
	// Budget is the relative exactness budget ε (default 0.05).
	Budget float64 `json:"budget,omitempty"`
	// MaxGroups bounds the resident <minute, target> groups across all
	// shards (default 1024). Lighter targets beyond the bound are evicted
	// space-saving style, never the heavy ones.
	MaxGroups int `json:"max_groups,omitempty"`
	// TopK overrides the per-(group, categorical) summary size (default
	// derived from Budget).
	TopK int `json:"top_k,omitempty"`
	// CMWidth and CMDepth size the per-shard target admission count-min
	// sketch (defaults 4096 × 2).
	CMWidth int `json:"cm_width,omitempty"`
	CMDepth int `json:"cm_depth,omitempty"`
	// HLLPrecision overrides the per-(group, categorical) distinct-counter
	// precision (default derived from Budget).
	HLLPrecision int `json:"hll_precision,omitempty"`
}

// Default sketch parameters; see SketchConfig.
const (
	DefaultSketchBudget = 0.05
	DefaultMaxGroups    = 1024
)

// resolve fills every derived field so shards can share one concrete config.
func (c *SketchConfig) resolve() SketchConfig {
	var r SketchConfig
	if c != nil {
		r = *c
	}
	if r.Budget <= 0 {
		r.Budget = DefaultSketchBudget
	}
	if r.MaxGroups <= 0 {
		r.MaxGroups = DefaultMaxGroups
	}
	if r.TopK <= 0 {
		r.TopK = int(math.Ceil(1 / r.Budget))
		if r.TopK < 2*R {
			r.TopK = 2 * R
		}
	}
	if r.CMWidth <= 0 {
		r.CMWidth = 4096
	}
	if r.CMDepth <= 0 {
		r.CMDepth = 2
	}
	if r.HLLPrecision <= 0 {
		r.HLLPrecision = sketch.HLLPrecisionFor(r.Budget)
	}
	return r
}

// groupFootprint is the steady-state heap cost of one resident group's
// sketch structures.
func (c SketchConfig) groupFootprint() int {
	ss := c.TopK * (48 + 24) // see sketch.SpaceSaving.Footprint
	return NumCats * (2*ss + 1<<c.HLLPrecision)
}

// sketchShard is the bounded-memory counterpart of a shard's exact target
// map: a capped table of sketch-backed groups, an eviction min-heap ordered
// by admission weight, and a count-min sketch that absorbs the traffic of
// non-resident targets so heavy newcomers can still displace light residents.
type sketchShard struct {
	cfg   SketchConfig // resolved
	cap   int          // resident group bound for this shard
	table map[netip.Addr]*sgroup
	heap  []*sgroup // indexed min-heap by (admW, target): eviction order
	pool  []*sgroup // recycled groups, sketches pre-sized
	tcm   *sketch.CountMin
}

func newSketchShard(cfg SketchConfig, shards int) *sketchShard {
	capGroups := cfg.MaxGroups / shards
	if capGroups < 2*R {
		capGroups = 2 * R // floor so tiny budgets still rank meaningfully
	}
	return &sketchShard{
		cfg:   cfg,
		cap:   capGroups,
		table: make(map[netip.Addr]*sgroup, capGroups),
		heap:  make([]*sgroup, 0, capGroups),
		tcm:   sketch.NewCountMin(cfg.CMWidth, cfg.CMDepth),
	}
}

// footprint is the shard's steady-state sketch heap in bytes.
func (s *sketchShard) footprint() int {
	return s.tcm.Footprint() + (len(s.table)+len(s.pool))*s.cfg.groupFootprint()
}

// sgroup is a sketch-backed <minute, target> group: per categorical, two
// space-saving summaries (bytes-primary and packets-primary, so both byte
// and packet heavy hitters keep their guarantee) and a HyperLogLog distinct
// counter. Rule annotations and ground-truth vectors stay exact — both are
// tiny and must not be approximated.
//
// The packets-primary summary is lazy: while the bytes-primary summary has
// never evicted it holds every value exactly, so the two summaries would be
// identical and only ssB is maintained. At the first would-be eviction
// (dual[c] flips) ssB's still-exact state is cloned into ssP and the two
// evolve independently. Groups below the summary size — the common case —
// therefore pay a single summary update per categorical.
type sgroup struct {
	minute int64
	target netip.Addr
	label  bool
	flows  int
	admW   uint64 // eviction weight: observed bytes + inherited error
	werr   uint64 // admission error inherited from the evicted group
	hpos   int32  // position in the shard eviction heap
	dual   [NumCats]bool
	rules  map[string]struct{}
	vec    map[string]int
	ssB    [NumCats]*sketch.SpaceSaving
	ssP    [NumCats]*sketch.SpaceSaving
	hll    [NumCats]*sketch.HLL
}

func newSgroup(cfg SketchConfig) *sgroup {
	g := &sgroup{
		rules: make(map[string]struct{}),
		vec:   make(map[string]int),
	}
	for c := 0; c < NumCats; c++ {
		g.ssB[c] = sketch.NewSpaceSaving(cfg.TopK, 0)
		g.ssP[c] = sketch.NewSpaceSaving(cfg.TopK, 1)
		g.hll[c] = sketch.NewHLL(cfg.HLLPrecision)
	}
	return g
}

func (g *sgroup) reset(minute int64, target netip.Addr) {
	g.minute = minute
	g.target = target
	g.label = false
	g.flows = 0
	g.admW = 0
	g.werr = 0
	if len(g.rules) != 0 {
		clear(g.rules)
	}
	if len(g.vec) != 0 {
		clear(g.vec)
	}
	for c := 0; c < NumCats; c++ {
		g.ssB[c].Reset()
		if g.dual[c] {
			// Stale ssP content is harmless when !dual: the next dual
			// transition clones over it, so skip the map clear.
			g.ssP[c].Reset()
			g.dual[c] = false
		}
		g.hll[c].Reset()
	}
}

// observe feeds one flow's categorical values into the group's sketches.
func (g *sgroup) observe(rec *netflow.Record) {
	for c := 0; c < NumCats; c++ {
		k := catKey(c, rec)
		g.hll[c].AddKey(k)
		if !g.dual[c] {
			if !g.ssB[c].WillEvict(k) {
				g.ssB[c].Add(k, rec.Bytes, rec.Packets)
				continue
			}
			g.ssP[c].CopyFrom(g.ssB[c])
			g.dual[c] = true
		}
		g.ssB[c].Add(k, rec.Bytes, rec.Packets)
		g.ssP[c].Add(k, rec.Bytes, rec.Packets)
	}
}

// sgLess is the eviction order: smallest admission weight first, ties broken
// by target address so eviction is a pure function of the stream.
func sgLess(a, b *sgroup) bool {
	if a.admW != b.admW {
		return a.admW < b.admW
	}
	return a.target.Compare(b.target) < 0
}

func (s *sketchShard) heapSwap(i, j int32) {
	h := s.heap
	h[i], h[j] = h[j], h[i]
	h[i].hpos, h[j].hpos = i, j
}

func (s *sketchShard) siftUp(i int32) {
	for i > 0 {
		p := (i - 1) / 2
		if !sgLess(s.heap[i], s.heap[p]) {
			return
		}
		s.heapSwap(i, p)
		i = p
	}
}

func (s *sketchShard) siftDown(i int32) {
	n := int32(len(s.heap))
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if r := c + 1; r < n && sgLess(s.heap[r], s.heap[c]) {
			c = r
		}
		if !sgLess(s.heap[c], s.heap[i]) {
			return
		}
		s.heapSwap(i, c)
		i = c
	}
}

func (s *sketchShard) heapPush(g *sgroup) {
	g.hpos = int32(len(s.heap))
	s.heap = append(s.heap, g)
	s.siftUp(g.hpos)
}

// targetKey hashes a target address to the 64-bit admission-sketch key
// (FNV-1a over the 16-byte form, deterministic across processes).
func targetKey(addr netip.Addr) uint64 {
	b := addr.As16()
	h := uint64(14695981039346656037)
	for _, x := range b {
		h = (h ^ uint64(x)) * 1099511628211
	}
	return h
}

// add routes one flow to its resident group, admitting the target first if
// needed. A nil return means the target was not admitted: its traffic is
// absorbed by the admission sketch only, and it will displace the lightest
// resident once its count-min estimate outgrows them.
func (s *sketchShard) add(rec *netflow.Record, m int64) *sgroup {
	if g := s.table[rec.DstIP]; g != nil {
		g.admW += rec.Bytes
		s.siftDown(g.hpos)
		return g
	}
	estB, _ := s.tcm.Update(targetKey(rec.DstIP), rec.Bytes, rec.Packets)
	if len(s.table) >= s.cap {
		victim := s.heap[0]
		if estB <= victim.admW {
			return nil
		}
		delete(s.table, victim.target)
		werr := victim.admW
		victim.reset(m, rec.DstIP)
		victim.werr = werr
		victim.admW = werr + rec.Bytes
		s.table[rec.DstIP] = victim
		s.siftDown(0)
		return victim
	}
	var g *sgroup
	if n := len(s.pool); n > 0 {
		g = s.pool[n-1]
		s.pool = s.pool[:n-1]
	} else {
		g = newSgroup(s.cfg)
	}
	g.reset(m, rec.DstIP)
	g.admW = rec.Bytes
	s.table[rec.DstIP] = g
	s.heapPush(g)
	return g
}

// finish ranks a sketch-backed group into an Aggregate, mirroring
// group.finish: the bytes ranking reads the bytes-primary summary, the
// packets ranking the packets-primary one, and the mean-packet-size ranking
// their deterministic union (a key present in both contributes its
// bytes-primary counters). It also returns the group's summed error bounds
// and estimated totals for the flush-level relative-error gauge.
func (g *sgroup) finish() (*Aggregate, float64, float64) {
	agg := &Aggregate{
		Minute: g.minute,
		Target: g.target,
		Label:  g.label,
		Flows:  g.flows,
	}
	errSum := float64(g.werr)
	totSum := float64(g.admW)
	var tops [NumMets]topK
	for c := 0; c < NumCats; c++ {
		for m := range tops {
			tops[m] = topK{}
		}
		if !g.dual[c] {
			// Pre-eviction the bytes-primary summary is exact and identical
			// to what the packets-primary one would hold, so one loop feeds
			// all three rankings with zero error bounds.
			for _, e := range g.ssB[c].Entries() {
				fb, fp := float64(e.W[0]), float64(e.W[1])
				ps := 0.0
				if e.W[1] != 0 {
					ps = fb / fp
				}
				tops[MetBytes].offer(e.Key, fb)
				tops[MetPackets].offer(e.Key, fp)
				tops[MetPktSize].offer(e.Key, ps)
				totSum += fb + fp
			}
		} else {
			for _, e := range g.ssB[c].Entries() {
				fb, fp := float64(e.W[0]), float64(e.W[1])
				ps := 0.0
				if e.W[1] != 0 {
					ps = fb / fp
				}
				tops[MetPktSize].offer(e.Key, ps)
				tops[MetBytes].offer(e.Key, fb)
				errSum += float64(e.E[0])
				totSum += fb
			}
			for _, e := range g.ssP[c].Entries() {
				tops[MetPackets].offer(e.Key, float64(e.W[1]))
				errSum += float64(e.E[1])
				totSum += float64(e.W[1])
				if !g.ssB[c].Has(e.Key) {
					ps := 0.0
					if e.W[1] != 0 {
						ps = float64(e.W[0]) / float64(e.W[1])
					}
					tops[MetPktSize].offer(e.Key, ps)
				}
			}
		}
		for m := 0; m < NumMets; m++ {
			for r, e := range tops[m].ranked() {
				agg.Keys[c][m][r] = e.key
				agg.Present[c][m][r] = true
				agg.Mets[c][m][r] = e.met
			}
		}
		agg.Distinct[c] = g.hll[c].Estimate()
	}
	if len(g.rules) > 0 {
		agg.RuleIDs = make([]string, 0, len(g.rules))
		for id := range g.rules {
			agg.RuleIDs = append(agg.RuleIDs, id)
		}
		sort.Strings(agg.RuleIDs)
	}
	best, bestN := "", 0
	for v, n := range g.vec {
		if n > bestN || (n == bestN && v < best) {
			best, bestN = v, n
		}
	}
	agg.Vector = best
	return agg, errSum, totSum
}

// flushSketch is flushMinute for sketch mode: identical collect-sort-rank
// shape, plus per-minute admission-sketch resets and the error-bound
// accounting behind the relative-error gauge.
func (a *Aggregator) flushSketch() {
	total, foot := 0, 0
	for i := range a.shards {
		sk := a.shards[i].sk
		total += len(sk.table)
		foot += sk.footprint()
	}
	if total == 0 {
		a.Metrics.observeFlush(0, float64(foot), 0)
		return
	}
	groups := make([]*sgroup, 0, total)
	for i := range a.shards {
		sk := a.shards[i].sk
		for _, g := range sk.table {
			groups = append(groups, g)
		}
		clear(sk.table)
		sk.heap = sk.heap[:0]
		sk.tcm.Reset() // admission weights are per-minute
	}
	sort.Slice(groups, func(i, j int) bool {
		return groups[i].target.Compare(groups[j].target) < 0
	})
	if cap(a.finish) < total {
		a.finish = make([]*Aggregate, total)
		a.errW = make([]float64, total)
		a.errT = make([]float64, total)
	}
	out := a.finish[:total]
	errW, errT := a.errW[:total], a.errT[:total]
	workers := par.Workers(a.Workers)
	if total < 16 {
		workers = 1
	}
	par.ForChunks(workers, total, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i], errW[i], errT[i] = groups[i].finish()
		}
	})
	var eW, eT float64
	for i, agg := range out {
		if a.Emit != nil {
			a.Emit(agg)
		}
		out[i] = nil
		eW += errW[i]
		eT += errT[i]
		sk := a.shards[a.shardIndex(groups[i].target)].sk
		sk.pool = append(sk.pool, groups[i])
	}
	rel := 0.0
	if eT > 0 {
		rel = eW / eT
	}
	a.Metrics.observeFlush(float64(total), float64(foot), rel)
}

// --- sketch-state checkpointing ---------------------------------------------

// fagMagic guards serialized aggregator sketch state.
const fagMagic = uint32(0x4641_4731) // "FAG1"

// SketchState serializes the aggregator's in-flight sketch-mode minute —
// admission sketches, eviction heaps and every resident group — so a
// restarted process can resume mid-minute and emit bit-identical aggregates.
// Group order follows each shard's heap array, and RestoreSketchState
// reinstalls it verbatim, so post-restore evictions replay exactly as they
// would have in the original process.
func (a *Aggregator) SketchState() ([]byte, error) {
	if a.shards[0].sk == nil {
		return nil, fmt.Errorf("features: SketchState on an exact-mode aggregator")
	}
	dst := binary.BigEndian.AppendUint32(nil, fagMagic)
	dst = binary.BigEndian.AppendUint64(dst, uint64(a.cur))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(a.shards)))
	for i := range a.shards {
		sk := a.shards[i].sk
		dst = appendBytes(dst, sk.tcm.AppendBinary(nil))
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(sk.heap)))
		for _, g := range sk.heap {
			dst = g.appendBinary(dst)
		}
	}
	return dst, nil
}

// RestoreSketchState restores state serialized by SketchState. The receiver
// must be a sketch-mode aggregator with the same shard count; sketch
// geometry is taken from the checkpoint.
func (a *Aggregator) RestoreSketchState(data []byte) error {
	if a.shards[0].sk == nil {
		return fmt.Errorf("features: RestoreSketchState on an exact-mode aggregator")
	}
	if len(data) < 16 || binary.BigEndian.Uint32(data) != fagMagic {
		return fmt.Errorf("features: bad sketch-state header")
	}
	cur := int64(binary.BigEndian.Uint64(data[4:]))
	shards := int(binary.BigEndian.Uint32(data[12:]))
	if shards != len(a.shards) {
		return fmt.Errorf("features: checkpoint has %d shards, aggregator %d", shards, len(a.shards))
	}
	data = data[16:]
	for i := range a.shards {
		sk := a.shards[i].sk
		blob, rest, err := takeBytes(data)
		if err != nil {
			return err
		}
		data = rest
		if err := sk.tcm.UnmarshalBinary(blob); err != nil {
			return err
		}
		if len(data) < 4 {
			return fmt.Errorf("features: truncated sketch state")
		}
		n := int(binary.BigEndian.Uint32(data))
		data = data[4:]
		clear(sk.table)
		sk.heap = sk.heap[:0]
		for j := 0; j < n; j++ {
			var g *sgroup
			if p := len(sk.pool); p > 0 {
				g = sk.pool[p-1]
				sk.pool = sk.pool[:p-1]
			} else {
				g = newSgroup(sk.cfg)
			}
			rest, err := g.unmarshalBinary(data)
			if err != nil {
				return err
			}
			data = rest
			g.hpos = int32(j)
			sk.heap = append(sk.heap, g)
			sk.table[g.target] = g
		}
	}
	if len(data) != 0 {
		return fmt.Errorf("features: %d trailing bytes in sketch state", len(data))
	}
	a.cur = cur
	return nil
}

func appendBytes(dst, b []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

func takeBytes(data []byte) (blob, rest []byte, err error) {
	if len(data) < 4 {
		return nil, nil, fmt.Errorf("features: truncated sketch state")
	}
	n := int(binary.BigEndian.Uint32(data))
	if len(data)-4 < n {
		return nil, nil, fmt.Errorf("features: truncated sketch state blob")
	}
	return data[4 : 4+n], data[4+n:], nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

func takeString(data []byte) (string, []byte, error) {
	b, rest, err := takeBytes(data)
	return string(b), rest, err
}

func (g *sgroup) appendBinary(dst []byte) []byte {
	b16 := g.target.As16()
	is4 := byte(0)
	if g.target.Is4() {
		is4 = 1
	}
	dst = append(dst, is4)
	dst = append(dst, b16[:]...)
	dst = binary.BigEndian.AppendUint64(dst, uint64(g.minute))
	lbl := byte(0)
	if g.label {
		lbl = 1
	}
	dst = append(dst, lbl)
	dst = binary.BigEndian.AppendUint64(dst, uint64(g.flows))
	dst = binary.BigEndian.AppendUint64(dst, g.admW)
	dst = binary.BigEndian.AppendUint64(dst, g.werr)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(g.rules)))
	for id := range g.rules {
		dst = appendString(dst, id)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(g.vec)))
	for v, n := range g.vec {
		dst = appendString(dst, v)
		dst = binary.BigEndian.AppendUint64(dst, uint64(n))
	}
	for c := 0; c < NumCats; c++ {
		d := byte(0)
		if g.dual[c] {
			d = 1
		}
		dst = append(dst, d)
	}
	for c := 0; c < NumCats; c++ {
		dst = appendBytes(dst, g.ssB[c].AppendBinary(nil))
		if g.dual[c] {
			dst = appendBytes(dst, g.ssP[c].AppendBinary(nil))
		}
		dst = appendBytes(dst, g.hll[c].AppendBinary(nil))
	}
	return dst
}

func (g *sgroup) unmarshalBinary(data []byte) ([]byte, error) {
	if len(data) < 17+8+1+24 {
		return nil, fmt.Errorf("features: truncated sketch group")
	}
	is4 := data[0]
	var b16 [16]byte
	copy(b16[:], data[1:17])
	if is4 != 0 {
		g.target = netip.AddrFrom4([4]byte(b16[12:16]))
	} else {
		g.target = netip.AddrFrom16(b16)
	}
	g.minute = int64(binary.BigEndian.Uint64(data[17:]))
	g.label = data[25] != 0
	g.flows = int(binary.BigEndian.Uint64(data[26:]))
	g.admW = binary.BigEndian.Uint64(data[34:])
	g.werr = binary.BigEndian.Uint64(data[42:])
	data = data[50:]
	if len(data) < 4 {
		return nil, fmt.Errorf("features: truncated sketch group rules")
	}
	nr := int(binary.BigEndian.Uint32(data))
	data = data[4:]
	clear(g.rules)
	for i := 0; i < nr; i++ {
		id, rest, err := takeString(data)
		if err != nil {
			return nil, err
		}
		g.rules[id] = struct{}{}
		data = rest
	}
	if len(data) < 4 {
		return nil, fmt.Errorf("features: truncated sketch group vectors")
	}
	nv := int(binary.BigEndian.Uint32(data))
	data = data[4:]
	clear(g.vec)
	for i := 0; i < nv; i++ {
		v, rest, err := takeString(data)
		if err != nil {
			return nil, err
		}
		if len(rest) < 8 {
			return nil, fmt.Errorf("features: truncated sketch group vector count")
		}
		g.vec[v] = int(binary.BigEndian.Uint64(rest))
		data = rest[8:]
	}
	if len(data) < NumCats {
		return nil, fmt.Errorf("features: truncated sketch group dual flags")
	}
	for c := 0; c < NumCats; c++ {
		g.dual[c] = data[c] != 0
	}
	data = data[NumCats:]
	for c := 0; c < NumCats; c++ {
		us := []interface{ UnmarshalBinary([]byte) error }{g.ssB[c], g.hll[c]}
		if g.dual[c] {
			us = []interface{ UnmarshalBinary([]byte) error }{g.ssB[c], g.ssP[c], g.hll[c]}
		}
		for _, u := range us {
			blob, rest, err := takeBytes(data)
			if err != nil {
				return nil, err
			}
			if err := u.UnmarshalBinary(blob); err != nil {
				return nil, err
			}
			data = rest
		}
	}
	return data, nil
}
