package features

import (
	"math"
	"math/rand"
	"net/netip"
	"reflect"
	"runtime"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/tagging"
)

// TestShardsFor locks DefaultShards to the available parallelism: the shard
// count must never exceed GOMAXPROCS (a 1-core box gets exactly 1 shard).
func TestShardsFor(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 4, 5: 4, 7: 4, 8: 8, 9: 8, 16: 16, 17: 16, 64: 16}
	for procs, want := range cases {
		if got := shardsFor(procs); got != want {
			t.Errorf("shardsFor(%d) = %d, want %d", procs, got, want)
		}
		if got := shardsFor(procs); got > procs {
			t.Errorf("shardsFor(%d) = %d exceeds worker parallelism", procs, got)
		}
	}
	if got, procs := DefaultShards(), runtime.GOMAXPROCS(0); got > procs || got < 1 {
		t.Errorf("DefaultShards() = %d with GOMAXPROCS %d", got, procs)
	}
}

// generousSketch is a budget so lax that the test streams cause no evictions
// anywhere: every summary holds every value, every target stays resident.
// Under it the sketch path must be bit-identical to exact (HLL distinct
// estimates aside).
func generousSketch() *SketchConfig {
	return &SketchConfig{Budget: 0.001, MaxGroups: 1 << 16, TopK: 1 << 12}
}

// normalizeDistinct verifies sketch HLL distinct estimates against the exact
// counts within relTol, then copies the exact values over so the remaining
// fields can be compared with reflect.DeepEqual.
func normalizeDistinct(tb testing.TB, got, want *Aggregate, relTol float64) {
	tb.Helper()
	for c := 0; c < NumCats; c++ {
		exact := want.Distinct[c]
		if exact == 0 {
			continue
		}
		// Absolute slack of 2 covers register collisions at tiny counts,
		// where relative error is a meaningless yardstick.
		if diff := math.Abs(got.Distinct[c] - exact); diff > 2 && diff/exact > relTol {
			tb.Fatalf("target %v cat %d: distinct estimate %.1f vs exact %.0f (rel %.3f > %.3f)",
				want.Target, c, got.Distinct[c], exact, diff/exact, relTol)
		}
		got.Distinct[c] = exact
	}
}

// TestSketchAggregatorExactIdentity: with a budget generous enough that no
// structure ever evicts, the sketch path is the exact path — bit-for-bit
// identical aggregates at shard counts 1, 4 and 16, with and without a
// tagger, at several worker counts.
func TestSketchAggregatorExactIdentity(t *testing.T) {
	recs, vecs := equivalenceFlows(t, 20)
	rules := []tagging.Rule{
		{ID: "udp", Antecedent: []tagging.Item{tagging.NewItem(tagging.FieldProtocol, 17)}},
		{ID: "http", Antecedent: []tagging.Item{tagging.NewItem(tagging.FieldDstPort, 80)}},
	}
	for _, withTagger := range []bool{false, true} {
		var tagger *tagging.Tagger
		if withTagger {
			tagger = tagging.NewTagger(rules)
		}
		var want []*Aggregate
		ref := NewAggregatorShards(tagger, 4, func(a *Aggregate) { want = append(want, a) })
		runAggregator(ref.Add, ref.Close, recs, vecs)
		if len(want) == 0 {
			t.Fatal("exact aggregator produced no aggregates")
		}
		for _, shards := range []int{1, 4, 16} {
			for _, workers := range []int{1, 4} {
				var got []*Aggregate
				a := NewAggregatorSketch(tagger, shards, generousSketch(), func(ag *Aggregate) { got = append(got, ag) })
				a.Workers = workers
				runAggregator(a.Add, a.Close, recs, vecs)
				if len(got) != len(want) {
					t.Fatalf("tagger=%v shards=%d workers=%d: %d aggregates, exact %d",
						withTagger, shards, workers, len(got), len(want))
				}
				for i := range want {
					normalizeDistinct(t, got[i], want[i], 0.05)
					if !reflect.DeepEqual(got[i], want[i]) {
						t.Fatalf("tagger=%v shards=%d workers=%d: aggregate %d differs:\n got: %+v\nwant: %+v",
							withTagger, shards, workers, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// heavyStream builds one minute of high-cardinality traffic: `heavy` targets
// each receiving a dominant flood value per categorical plus a long tail of
// one-off scatter values and targets. The floods carry ~half the bytes and
// packets of their group, far above any realistic error budget.
func heavyStream(seed int64, heavy, scatter int) []netflow.Record {
	rng := rand.New(rand.NewSource(seed))
	var recs []netflow.Record
	for h := 0; h < heavy; h++ {
		target := netip.AddrFrom4([4]byte{10, 1, byte(h >> 8), byte(h)})
		// The flood: one source hammering the target.
		for i := 0; i < 40; i++ {
			recs = append(recs, netflow.Record{
				Timestamp: 60,
				SrcIP:     netip.AddrFrom4([4]byte{192, 0, 2, byte(h)}),
				DstIP:     target,
				SrcPort:   123,
				DstPort:   uint16(1000 + h),
				Protocol:  17,
				SrcMAC:    [6]byte{2, 0, 0, 0, 0, byte(h)},
				Packets:   50,
				Bytes:     60000,
			})
		}
		// The tail: distinct light sources into the same target.
		for i := 0; i < 60; i++ {
			recs = append(recs, netflow.Record{
				Timestamp: 60,
				SrcIP:     netip.AddrFrom4([4]byte{172, byte(16 + h%8), byte(rng.Intn(250)), byte(i)}),
				DstIP:     target,
				SrcPort:   uint16(20000 + rng.Intn(30000)),
				DstPort:   uint16(1000 + h),
				Protocol:  6,
				SrcMAC:    [6]byte{2, 1, byte(h), 0, 0, byte(i)},
				Packets:   2,
				Bytes:     1200,
			})
		}
	}
	// Scatter targets: one light flow each, inflating target cardinality far
	// past the resident-group bound.
	for sct := 0; sct < scatter; sct++ {
		recs = append(recs, netflow.Record{
			Timestamp: 60,
			SrcIP:     netip.AddrFrom4([4]byte{203, 0, byte(sct >> 8), byte(sct)}),
			DstIP:     netip.AddrFrom4([4]byte{10, 200, byte(sct >> 8), byte(sct)}),
			SrcPort:   uint16(1024 + sct%60000),
			DstPort:   53,
			Protocol:  17,
			SrcMAC:    [6]byte{2, 2, 0, byte(sct >> 8), 0, byte(sct)},
			Packets:   1,
			Bytes:     100,
		})
	}
	// Deterministic shuffle so heavy and scatter flows interleave.
	rng.Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
	return recs
}

// TestSketchHeavyHitterBudget: at a realistic budget on a stream whose
// cardinality far exceeds both the resident-group bound and the summary
// size, every heavy target must stay resident and its per-categorical byte
// and packet heavy hitters must appear in the sketch rankings with metric
// values within the budget of the exact path.
func TestSketchHeavyHitterBudget(t *testing.T) {
	const budget = 0.05
	for _, seed := range []int64{1, 7, 42} {
		recs := heavyStream(seed, 24, 4000)
		for _, shards := range []int{1, 4, 16} {
			exact := map[netip.Addr]*Aggregate{}
			ref := NewAggregatorShards(nil, shards, func(a *Aggregate) { exact[a.Target] = a })
			ref.AddBatch(recs, nil)
			ref.Close()

			got := map[netip.Addr]*Aggregate{}
			cfg := &SketchConfig{Budget: budget, MaxGroups: 256}
			a := NewAggregatorSketch(nil, shards, cfg, func(ag *Aggregate) { got[ag.Target] = ag })
			a.AddBatch(recs, nil)
			a.Close()

			if len(got) > 256+shards*2*R {
				t.Fatalf("seed=%d shards=%d: %d resident groups exceed the bound", seed, shards, len(got))
			}
			for h := 0; h < 24; h++ {
				target := netip.AddrFrom4([4]byte{10, 1, byte(h >> 8), byte(h)})
				sk := got[target]
				if sk == nil {
					t.Fatalf("seed=%d shards=%d: heavy target %v evicted", seed, shards, target)
				}
				ex := exact[target]
				for c := 0; c < NumCats; c++ {
					for _, met := range []int{MetBytes, MetPackets} {
						// The exact rank-0 entry is the flood value carrying
						// ~half the group's traffic: it must lead the sketch
						// ranking too, within the budget.
						if !sk.Present[c][met][0] {
							t.Fatalf("seed=%d shards=%d target=%v cat=%d met=%d: empty sketch ranking",
								seed, shards, target, c, met)
						}
						if sk.Keys[c][met][0] != ex.Keys[c][met][0] {
							t.Fatalf("seed=%d shards=%d target=%v cat=%d met=%d: top key %d, exact %d",
								seed, shards, target, c, met, sk.Keys[c][met][0], ex.Keys[c][met][0])
						}
						rel := math.Abs(sk.Mets[c][met][0]-ex.Mets[c][met][0]) / ex.Mets[c][met][0]
						if rel > budget {
							t.Fatalf("seed=%d shards=%d target=%v cat=%d met=%d: metric %.0f vs exact %.0f (rel %.3f)",
								seed, shards, target, c, met, sk.Mets[c][met][0], ex.Mets[c][met][0], rel)
						}
					}
				}
			}
		}
	}
}

// TestSketchCheckpointRestore: serializing the sketch state mid-minute and
// restoring it into a fresh aggregator must replay the rest of the stream to
// bit-identical emissions — the crash/restart contract of the chaos harness.
func TestSketchCheckpointRestore(t *testing.T) {
	recs := heavyStream(3, 16, 1500)
	// Extend with a second minute so the checkpoint straddles unflushed state.
	more := heavyStream(4, 16, 1500)
	for i := range more {
		more[i].Timestamp += 60
	}
	recs = append(recs, more...)
	cfg := &SketchConfig{Budget: 0.05, MaxGroups: 128}

	var want []*Aggregate
	full := NewAggregatorSketch(nil, 4, cfg, func(a *Aggregate) { want = append(want, a) })
	full.AddBatch(recs, nil)
	full.Close()

	cut := len(recs) / 2
	var pre []*Aggregate
	first := NewAggregatorSketch(nil, 4, cfg, func(a *Aggregate) { pre = append(pre, a) })
	first.AddBatch(recs[:cut], nil)
	state, err := first.SketchState()
	if err != nil {
		t.Fatal(err)
	}

	got := pre[:len(pre):len(pre)]
	second := NewAggregatorSketch(nil, 4, cfg, func(a *Aggregate) { got = append(got, a) })
	if err := second.RestoreSketchState(state); err != nil {
		t.Fatal(err)
	}
	second.AddBatch(recs[cut:], nil)
	second.Close()

	if len(got) != len(want) {
		t.Fatalf("restored run emitted %d aggregates, uninterrupted %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("aggregate %d differs after checkpoint/restore:\n got: %+v\nwant: %+v",
				i, got[i], want[i])
		}
	}
	if err := NewAggregatorShards(nil, 4, nil).RestoreSketchState(state); err == nil {
		t.Fatal("exact-mode aggregator accepted sketch state")
	}
	if err := second.RestoreSketchState(state[:8]); err == nil {
		t.Fatal("truncated sketch state accepted")
	}
}

// TestSketchAddAllocs proves the sketch ingest path stays allocation-free at
// steady state: resident targets, warm summaries, no admissions.
func TestSketchAddAllocs(t *testing.T) {
	recs := heavyStream(9, 8, 200)
	a := NewAggregatorSketch(nil, 4, &SketchConfig{Budget: 0.05, MaxGroups: 64}, nil)
	a.AddBatch(recs, nil)
	// Advance a minute and re-feed: every group now recycles through the
	// warm pool, which is the steady state being gated.
	for i := range recs {
		recs[i].Timestamp += 60
	}
	a.AddBatch(recs, nil)
	rec := recs[0]
	avg := testing.AllocsPerRun(300, func() {
		a.Add(&rec, "")
	})
	if avg != 0 {
		t.Errorf("sketch Add allocates %.2f objects/record steady-state, want 0", avg)
	}
}
