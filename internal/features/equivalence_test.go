package features

import (
	"math"
	"net/netip"
	"reflect"
	"sort"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/balance"
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
	"github.com/ixp-scrubber/ixpscrubber/internal/tagging"
)

// This file preserves the pre-sharding aggregator — one flat target map per
// minute, full sort.Slice ranking per (categorical, metric) — as the
// reference implementation. The equivalence tests lock the sharded
// streaming top-K path to it bit-for-bit; the benchmarks feed the old-vs-new
// flush numbers of BENCH_PR3.json.

type refGroup struct {
	minute int64
	target netip.Addr
	label  bool
	acc    [NumCats]map[uint64][2]uint64
	rules  map[string]struct{}
	vec    map[string]int
	flows  int
}

type refAggregator struct {
	tagger *tagging.Tagger
	emit   func(*Aggregate)
	cur    int64
	groups map[netip.Addr]*refGroup
	hits   []int
}

func newRefAggregator(tagger *tagging.Tagger, emit func(*Aggregate)) *refAggregator {
	return &refAggregator{
		tagger: tagger,
		emit:   emit,
		cur:    math.MinInt64,
		groups: make(map[netip.Addr]*refGroup),
	}
}

func (a *refAggregator) Add(rec *netflow.Record, vector string) {
	m := rec.Minute()
	if m < a.cur {
		return
	}
	if m > a.cur {
		a.flush()
		a.cur = m
	}
	g := a.groups[rec.DstIP]
	if g == nil {
		g = &refGroup{
			minute: m,
			target: rec.DstIP,
			rules:  make(map[string]struct{}),
			vec:    make(map[string]int),
		}
		for c := range g.acc {
			g.acc[c] = make(map[uint64][2]uint64)
		}
		a.groups[rec.DstIP] = g
	}
	g.flows++
	if rec.Blackholed {
		g.label = true
	}
	if vector != "" {
		g.vec[vector]++
	}
	for c := 0; c < NumCats; c++ {
		k := catKey(c, rec)
		bp := g.acc[c][k]
		bp[0] += rec.Bytes
		bp[1] += rec.Packets
		g.acc[c][k] = bp
	}
	if a.tagger != nil {
		a.hits = a.hits[:0]
		a.hits = a.tagger.Match(rec, a.hits)
		for _, i := range a.hits {
			g.rules[a.tagger.Rules()[i].ID] = struct{}{}
		}
	}
}

func (a *refAggregator) Close() { a.flush() }

func (a *refAggregator) flush() {
	if len(a.groups) == 0 {
		return
	}
	targets := make([]netip.Addr, 0, len(a.groups))
	for t := range a.groups {
		targets = append(targets, t)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].Compare(targets[j]) < 0 })
	for _, t := range targets {
		agg := a.groups[t].finish()
		if a.emit != nil {
			a.emit(agg)
		}
	}
	clear(a.groups)
}

type refKV struct {
	key   uint64
	bytes uint64
	pkts  uint64
	met   float64
}

func (g *refGroup) finish() *Aggregate {
	agg := &Aggregate{
		Minute: g.minute,
		Target: g.target,
		Label:  g.label,
		Flows:  g.flows,
	}
	var scratch []refKV
	for c := 0; c < NumCats; c++ {
		scratch = scratch[:0]
		for k, bp := range g.acc[c] {
			scratch = append(scratch, refKV{key: k, bytes: bp[0], pkts: bp[1]})
		}
		for m := 0; m < NumMets; m++ {
			for i := range scratch {
				e := &scratch[i]
				switch m {
				case MetPktSize:
					if e.pkts == 0 {
						e.met = 0
					} else {
						e.met = float64(e.bytes) / float64(e.pkts)
					}
				case MetBytes:
					e.met = float64(e.bytes)
				default:
					e.met = float64(e.pkts)
				}
			}
			sort.Slice(scratch, func(i, j int) bool {
				if scratch[i].met != scratch[j].met {
					return scratch[i].met > scratch[j].met
				}
				return scratch[i].key < scratch[j].key
			})
			for r := 0; r < R && r < len(scratch); r++ {
				agg.Keys[c][m][r] = scratch[r].key
				agg.Present[c][m][r] = true
				agg.Mets[c][m][r] = scratch[r].met
			}
		}
		agg.Distinct[c] = float64(len(g.acc[c]))
	}
	if len(g.rules) > 0 {
		agg.RuleIDs = make([]string, 0, len(g.rules))
		for id := range g.rules {
			agg.RuleIDs = append(agg.RuleIDs, id)
		}
		sort.Strings(agg.RuleIDs)
	}
	best, bestN := "", 0
	for v, n := range g.vec {
		if n > bestN || (n == bestN && v < best) {
			best, bestN = v, n
		}
	}
	agg.Vector = best
	return agg
}

// equivalenceFlows builds a seeded synthetic stream (balanced, with ground
// truth vectors) plus hand-crafted tie cases the generator is unlikely to
// produce: equal metric values that must break by key, zero-packet entries,
// and targets colliding across minutes.
func equivalenceFlows(tb testing.TB, minutes int) ([]netflow.Record, []string) {
	tb.Helper()
	g := synth.NewGenerator(synth.ProfileUS1())
	balanced, _ := balance.Flows(17, g.Generate(0, int64(minutes)))
	recs := make([]netflow.Record, 0, len(balanced)+64)
	vecs := make([]string, 0, cap(recs))
	for i := range balanced {
		recs = append(recs, balanced[i].Record)
		vecs = append(vecs, balanced[i].Vector)
	}
	// Tie block: six sources at identical byte/packet counts into one
	// target — ranking must pick the R lowest keys deterministically.
	tieMinute := int64(minutes + 1)
	for i := 0; i < 6; i++ {
		recs = append(recs, netflow.Record{
			Timestamp: tieMinute * 60,
			SrcIP:     netip.AddrFrom4([4]byte{203, 0, 113, byte(10 + i)}),
			DstIP:     netip.MustParseAddr("198.51.100.200"),
			SrcPort:   uint16(40000 + i),
			DstPort:   80,
			Protocol:  6,
			SrcMAC:    [6]byte{2, 0, 0, 0, 0, byte(i)},
			Packets:   10,
			Bytes:     5000,
		})
		vecs = append(vecs, "")
	}
	return recs, vecs
}

func runAggregator(add func(*netflow.Record, string), close func(), recs []netflow.Record, vecs []string) {
	for i := range recs {
		add(&recs[i], vecs[i])
	}
	close()
}

// TestAggregatorEquivalence locks the sharded streaming aggregator to the
// reference implementation: identical Aggregate records (keys, metrics,
// presence masks, ordering, rules, vectors) at shard counts 1, 4 and 16,
// with and without a tagger, at several worker counts.
func TestAggregatorEquivalence(t *testing.T) {
	recs, vecs := equivalenceFlows(t, 30)
	rules := []tagging.Rule{
		{ID: "udp", Antecedent: []tagging.Item{tagging.NewItem(tagging.FieldProtocol, 17)}},
		{ID: "http", Antecedent: []tagging.Item{tagging.NewItem(tagging.FieldDstPort, 80)}},
	}
	for _, withTagger := range []bool{false, true} {
		var tagger *tagging.Tagger
		if withTagger {
			tagger = tagging.NewTagger(rules)
		}
		var want []*Aggregate
		ref := newRefAggregator(tagger, func(a *Aggregate) { want = append(want, a) })
		runAggregator(ref.Add, ref.Close, recs, vecs)
		if len(want) == 0 {
			t.Fatal("reference produced no aggregates")
		}
		for _, shards := range []int{1, 4, 16} {
			for _, workers := range []int{1, 4} {
				var got []*Aggregate
				a := NewAggregatorShards(tagger, shards, func(ag *Aggregate) { got = append(got, ag) })
				a.Workers = workers
				runAggregator(a.Add, a.Close, recs, vecs)
				if len(got) != len(want) {
					t.Fatalf("tagger=%v shards=%d workers=%d: %d aggregates, reference %d",
						withTagger, shards, workers, len(got), len(want))
				}
				for i := range want {
					if !reflect.DeepEqual(got[i], want[i]) {
						t.Fatalf("tagger=%v shards=%d workers=%d: aggregate %d differs:\n got: %+v\nwant: %+v",
							withTagger, shards, workers, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestAggregatorEquivalenceBatch: the AddBatch path must match record-wise
// Add exactly, including late-record drops at batch boundaries.
func TestAggregatorEquivalenceBatch(t *testing.T) {
	recs, vecs := equivalenceFlows(t, 20)
	// Splice a late record mid-stream to exercise the drop path.
	late := recs[0]
	late.Timestamp = 0
	recs = append(recs[:len(recs):len(recs)], late)
	vecs = append(vecs[:len(vecs):len(vecs)], "")

	var want []*Aggregate
	one := NewAggregatorShards(nil, 4, func(a *Aggregate) { want = append(want, a) })
	runAggregator(one.Add, one.Close, recs, vecs)

	for _, batch := range []int{1, 7, 256} {
		var got []*Aggregate
		a := NewAggregatorShards(nil, 4, func(ag *Aggregate) { got = append(got, ag) })
		for lo := 0; lo < len(recs); lo += batch {
			hi := min(lo+batch, len(recs))
			a.AddBatch(recs[lo:hi], vecs[lo:hi])
		}
		a.Close()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("batch=%d: AddBatch output differs from Add", batch)
		}
	}
}

// TestAggregatorGroupRecycling: recycled groups (minute N's maps reused in
// minute N+1) must never leak state between minutes or targets.
func TestAggregatorGroupRecycling(t *testing.T) {
	recs, vecs := equivalenceFlows(t, 8)
	var twice []*Aggregate
	a := NewAggregatorShards(nil, 4, func(ag *Aggregate) { twice = append(twice, ag) })
	runAggregator(a.Add, func() {}, recs, vecs)
	// Re-feed the same stream shifted by an hour: every group is built on
	// recycled maps. Output must mirror the first pass except for Minute.
	shift := int64(3600)
	shifted := make([]netflow.Record, len(recs))
	for i, r := range recs {
		r.Timestamp += shift
		shifted[i] = r
	}
	runAggregator(func(r *netflow.Record, v string) { a.Add(r, v) }, a.Close, shifted, vecs)
	if len(twice)%2 != 0 {
		t.Fatalf("aggregate count %d not even across identical passes", len(twice))
	}
	half := len(twice) / 2
	for i := 0; i < half; i++ {
		first, second := twice[i], twice[half+i]
		second.Minute -= shift / 60
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("aggregate %d differs after group recycling", i)
		}
	}
}

// TestAggregateAddAllocs gates the per-record aggregation cost: once a
// minute's groups and maps are warm, Add must stay within budget. Budget 1:
// netip.Addr map keys hash through an interface on some paths and group
// promotion may grow a bucket; anything above that means a regression to
// per-record scratch allocation.
func TestAggregateAddAllocs(t *testing.T) {
	recs, vecs := equivalenceFlows(t, 6)
	a := NewAggregatorShards(nil, 4, nil)
	runAggregator(a.Add, func() {}, recs, vecs) // warm groups and free list
	r := recs[len(recs)/2]
	r.Timestamp += 3600 // new minute: groups recycle from the free list
	a.Add(&r, "")
	avg := testing.AllocsPerRun(200, func() {
		a.Add(&r, "")
	})
	if avg > 1 {
		t.Errorf("aggregator Add allocates %.1f objects/record, budget 1", avg)
	}
}

func benchFlushFlows(b *testing.B) []netflow.Record {
	b.Helper()
	g := synth.NewGenerator(synth.ProfileUS1())
	balanced, _ := balance.Flows(23, g.Generate(0, 20))
	recs := make([]netflow.Record, len(balanced))
	for i := range balanced {
		recs[i] = balanced[i].Record
	}
	return recs
}

// BenchmarkFlushSharded vs BenchmarkFlushReference: the aggregation flush
// pair recorded by scripts/bench.sh into BENCH_PR3.json.
func BenchmarkFlushSharded(b *testing.B) {
	recs := benchFlushFlows(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := NewAggregator(nil, nil)
		a.AddBatch(recs, nil)
		a.Close()
	}
}

func BenchmarkFlushReference(b *testing.B) {
	recs := benchFlushFlows(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := newRefAggregator(nil, nil)
		for j := range recs {
			a.Add(&recs[j], "")
		}
		a.Close()
	}
}
