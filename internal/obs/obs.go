// Package obs is the observability substrate of the live pipeline: a
// dependency-free metrics registry (atomic counters, gauges, fixed-bucket
// histograms, labeled families, and scrape-time function metrics) with a
// Prometheus-text-format exposition handler, plus liveness/readiness
// endpoints and a pprof mux for the daemon.
//
// Design constraints, in order:
//
//  1. Hot-path cost: incrementing a counter or observing a histogram value
//     is a handful of atomic operations, no locks, no allocation. Metric
//     handles are resolved once at wiring time, never per event.
//  2. No dependencies: the exposition format is the stable subset of the
//     Prometheus text format (HELP/TYPE lines, escaping, cumulative
//     histogram buckets), emitted with deterministic ordering so the output
//     is diffable across runs and testable against golden files.
//  3. Scrape-time reads: components that already keep their own atomic
//     stats (collectors, the BGP registry) are exposed through function
//     metrics that read those stats when /metrics is scraped, adding zero
//     cost to their hot paths.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	case typeHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry holds metric families. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric family: a type, a help string, a label
// schema, and the child metrics keyed by their label values.
type family struct {
	name    string
	help    string
	typ     metricType
	labels  []string
	buckets []float64 // histogram families only

	mu       sync.Mutex
	children map[string]*child
}

// child is one sample within a family (one combination of label values).
type child struct {
	labelValues []string

	// Counters store an integer count; gauges store float bits. fn, when
	// set, overrides the stored value at scrape time (function metrics).
	bits atomic.Uint64
	fn   func() float64

	// Histogram state (histogram families only).
	hist *histogram
}

// value returns the child's current scalar value.
func (c *child) value(typ metricType) float64 {
	if c.fn != nil {
		return c.fn()
	}
	if typ == typeCounter {
		return float64(c.bits.Load())
	}
	return math.Float64frombits(c.bits.Load())
}

const labelSep = "\xff"

func childKey(values []string) string { return strings.Join(values, labelSep) }

// getFamily returns the named family, creating it on first use.
// Re-requesting a name with a different type, label schema, or bucket
// layout panics: that is a wiring bug, not a runtime condition.
func (r *Registry) getFamily(name, help string, typ metricType, labels []string, buckets []float64) *family {
	mustValidName(name)
	for _, l := range labels {
		mustValidName(l)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, typ, f.typ))
		}
		if !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with labels %v, was %v", name, labels, f.labels))
		}
		if !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("obs: histogram %q re-registered with different buckets", name))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

func (f *family) child(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := childKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := &child{labelValues: append([]string(nil), values...)}
	if f.typ == typeHistogram {
		c.hist = newHistogram(f.buckets)
	}
	f.children[key] = c
	return c
}

func mustValidName(name string) {
	if name == "" {
		panic("obs: empty metric or label name")
	}
	for i := 0; i < len(name); i++ {
		ch := name[i]
		ok := ch == '_' || ch == ':' ||
			(ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
			(i > 0 && ch >= '0' && ch <= '9')
		if !ok {
			panic(fmt.Sprintf("obs: invalid metric or label name %q", name))
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// snapshot returns the families sorted by name and, per family, the
// children sorted by label values — the deterministic exposition order.
func (r *Registry) snapshot() []*family {
	r.mu.Lock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (f *family) sortedChildren() []*child {
	f.mu.Lock()
	out := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		out = append(out, c)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		return childKey(out[i].labelValues) < childKey(out[j].labelValues)
	})
	return out
}

// ---- Counter ----

// Counter is a monotonically increasing count.
type Counter struct{ c *child }

// Inc adds one.
func (c *Counter) Inc() { c.c.bits.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.c.bits.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.c.bits.Load() }

// Counter returns the unlabeled counter with the given name, creating it
// on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return &Counter{r.getFamily(name, help, typeCounter, nil, nil).child(nil)}
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — zero hot-path cost for components that keep their own atomics.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.getFamily(name, help, typeCounter, nil, nil).child(nil).fn = fn
}

// CounterVec is a family of counters sharing a label schema.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family with the given name.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.getFamily(name, help, typeCounter, labelNames, nil)}
}

// With returns the child counter for the given label values.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return &Counter{v.f.child(labelValues)}
}

// WithFunc registers a scrape-time function child for the label values.
func (v *CounterVec) WithFunc(fn func() float64, labelValues ...string) {
	v.f.child(labelValues).fn = fn
}

// ---- Gauge ----

// Gauge is a value that can go up and down.
type Gauge struct{ c *child }

// Set stores v.
func (g *Gauge) Set(v float64) { g.c.bits.Store(math.Float64bits(v)) }

// Add adds delta (atomically, CAS loop).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.c.bits.Load()) }

// Gauge returns the unlabeled gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return &Gauge{r.getFamily(name, help, typeGauge, nil, nil).child(nil)}
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.getFamily(name, help, typeGauge, nil, nil).child(nil).fn = fn
}

// GaugeVec is a family of gauges sharing a label schema.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family with the given name.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.getFamily(name, help, typeGauge, labelNames, nil)}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return &Gauge{v.f.child(labelValues)}
}

// WithFunc registers a scrape-time function child for the label values.
func (v *GaugeVec) WithFunc(fn func() float64, labelValues ...string) {
	v.f.child(labelValues).fn = fn
}

// ---- Histogram ----

// histogram is the shared bucket state of one histogram child.
type histogram struct {
	bounds []float64 // ascending upper bounds, +Inf implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float bits, CAS
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	// Buckets are few and fixed: linear scan beats binary search on the
	// short bound lists used here and keeps the loop branch-predictable.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Histogram accumulates observations into fixed buckets.
type Histogram struct{ c *child }

// Observe records one observation.
func (h *Histogram) Observe(v float64) { h.c.hist.observe(v) }

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.c.hist.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	return math.Float64frombits(h.c.hist.sum.Load())
}

// Histogram returns the unlabeled histogram with the given name. buckets
// are ascending upper bounds; the +Inf bucket is implicit. Nil buckets
// default to DurationBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DurationBuckets
	}
	mustAscending(name, buckets)
	return &Histogram{r.getFamily(name, help, typeHistogram, nil, buckets).child(nil)}
}

// HistogramVec is a family of histograms sharing a label schema.
type HistogramVec struct{ f *family }

// HistogramVec returns the labeled histogram family with the given name.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if buckets == nil {
		buckets = DurationBuckets
	}
	mustAscending(name, buckets)
	return &HistogramVec{r.getFamily(name, help, typeHistogram, labelNames, buckets)}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return &Histogram{v.f.child(labelValues)}
}

func mustAscending(name string, buckets []float64) {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not strictly ascending", name))
		}
	}
}

// DurationBuckets covers sub-millisecond classification latencies through
// multi-minute training rounds.
var DurationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// ExponentialBuckets returns n buckets starting at start, each factor
// times the previous.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExponentialBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LinearBuckets returns n buckets starting at start, spaced width apart.
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic("obs: LinearBuckets wants width > 0, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start += width
	}
	return out
}
