package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus writes every registered family in the Prometheus text
// exposition format (version 0.0.4). Output order is deterministic:
// families sort by name, children by label values, histogram buckets by
// ascending bound — so two scrapes of identical state are byte-identical
// and the format is golden-file testable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshot() {
		children := f.sortedChildren()
		if len(children) == 0 {
			continue
		}
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ.String())
		bw.WriteByte('\n')
		for _, c := range children {
			if f.typ == typeHistogram {
				writeHistogram(bw, f, c)
				continue
			}
			writeSample(bw, f.name, f.labels, c.labelValues, "", "", c.value(f.typ))
		}
	}
	return bw.Flush()
}

// writeSample emits one `name{labels} value` line. extraLabel/extraValue
// append a trailing label (the histogram `le`).
func writeSample(bw *bufio.Writer, name string, labels, values []string, extraLabel, extraValue string, v float64) {
	bw.WriteString(name)
	if len(labels) > 0 || extraLabel != "" {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(l)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(values[i]))
			bw.WriteByte('"')
		}
		if extraLabel != "" {
			if len(labels) > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(extraLabel)
			bw.WriteString(`="`)
			bw.WriteString(extraValue)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatValue(v))
	bw.WriteByte('\n')
}

func writeHistogram(bw *bufio.Writer, f *family, c *child) {
	h := c.hist
	// Cumulative bucket counts: each le bucket includes everything below.
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		writeSample(bw, f.name+"_bucket", f.labels, c.labelValues,
			"le", formatValue(bound), float64(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	writeSample(bw, f.name+"_bucket", f.labels, c.labelValues, "le", "+Inf", float64(cum))
	writeSample(bw, f.name+"_sum", f.labels, c.labelValues, "", "",
		math.Float64frombits(h.sum.Load()))
	writeSample(bw, f.name+"_count", f.labels, c.labelValues, "", "", float64(h.count.Load()))
}

// formatValue renders a float the way Prometheus clients expect: shortest
// round-trip representation, infinities as +Inf/-Inf.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
