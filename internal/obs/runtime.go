package obs

import (
	"runtime"
	"sync"
	"time"
)

// RegisterRuntimeMetrics exposes Go runtime health through the registry:
// goroutine count, heap usage, GC cycles, and GOMAXPROCS. Memory stats are
// cached for a second so aggressive scrapers cannot turn ReadMemStats
// stop-the-world pauses into a denial of service.
func RegisterRuntimeMetrics(r *Registry) {
	r.GaugeFunc("go_goroutines",
		"Number of goroutines that currently exist.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_gomaxprocs",
		"Value of GOMAXPROCS.",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })

	var (
		mu   sync.Mutex
		at   time.Time
		stat runtime.MemStats
	)
	mem := func(read func(*runtime.MemStats) float64) func() float64 {
		return func() float64 {
			mu.Lock()
			defer mu.Unlock()
			if time.Since(at) > time.Second {
				runtime.ReadMemStats(&stat)
				at = time.Now()
			}
			return read(&stat)
		}
	}
	r.GaugeFunc("go_memstats_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		mem(func(m *runtime.MemStats) float64 { return float64(m.HeapAlloc) }))
	r.GaugeFunc("go_memstats_sys_bytes",
		"Bytes of memory obtained from the OS.",
		mem(func(m *runtime.MemStats) float64 { return float64(m.Sys) }))
	r.CounterFunc("go_memstats_alloc_bytes_total",
		"Cumulative bytes allocated for heap objects.",
		mem(func(m *runtime.MemStats) float64 { return float64(m.TotalAlloc) }))
	r.CounterFunc("go_gc_cycles_total",
		"Completed GC cycles.",
		mem(func(m *runtime.MemStats) float64 { return float64(m.NumGC) }))
}
