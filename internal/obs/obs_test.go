package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests served.")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value() = %d, want 5", got)
	}
	// Same name returns the same underlying metric.
	if r.Counter("requests_total", "Requests served.").Value() != 5 {
		t.Fatal("re-request did not return the same counter")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "Queue depth.")
	g.Set(2.5)
	g.Inc()
	g.Dec()
	g.Add(0.5)
	if got := g.Value(); got != 3 {
		t.Fatalf("Value() = %g, want 3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count() = %d, want 5", got)
	}
	if got := h.Sum(); got != 55.65 {
		t.Fatalf("Sum() = %g, want 55.65", got)
	}
	// Bucket boundaries are inclusive: 0.1 falls in le="0.1".
	hist := h.c.hist
	want := []uint64{2, 1, 1, 1} // (..0.1], (0.1..1], (1..10], (10..+Inf)
	for i, w := range want {
		if got := hist.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestVecChildren(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("decoded_total", "Decoded.", "proto")
	v.With("sflow").Add(3)
	v.With("ipfix").Add(7)
	if v.With("sflow").Value() != 3 || v.With("ipfix").Value() != 7 {
		t.Fatal("children not independent")
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	n := 41.0
	r.GaugeFunc("live_value", "Read at scrape time.", func() float64 { return n })
	n = 42
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "live_value 42\n") {
		t.Fatalf("scrape did not read the function:\n%s", b.String())
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering as gauge did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestLabelMismatchPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("y_total", "", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label value count did not panic")
		}
	}()
	v.With("only-one")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	r.Counter("bad-name", "")
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", []float64{1})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.5)
				_ = r.WritePrometheus(io.Discard)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: c=%d g=%g h=%d", c.Value(), g.Value(), h.Count())
	}
}

func TestMuxEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "").Inc()
	var h Health
	srv := httptest.NewServer(NewMux(r, &h))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "up_total 1") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if code, _ := get("/healthz"); code != 200 {
		t.Errorf("/healthz = %d, want 200", code)
	}
	if code, _ := get("/readyz"); code != 503 {
		t.Errorf("/readyz before ready = %d, want 503", code)
	}
	h.SetReady(true)
	if code, _ := get("/readyz"); code != 200 {
		t.Errorf("/readyz after ready = %d, want 200", code)
	}
	if code, body := get("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}

func TestRegisterRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"go_goroutines", "go_memstats_heap_alloc_bytes", "go_gc_cycles_total"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("runtime metrics missing %s", want)
		}
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExponentialBuckets(1, 2, 4)
	if len(exp) != 4 || exp[0] != 1 || exp[3] != 8 {
		t.Errorf("ExponentialBuckets = %v", exp)
	}
	lin := LinearBuckets(0, 5, 3)
	if len(lin) != 3 || lin[2] != 10 {
		t.Errorf("LinearBuckets = %v", lin)
	}
}
