package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// golden compares the registry's exposition against testdata/<name>.golden.
// Run with -update to rewrite the files after an intentional format change;
// the diff then documents the change in the PR.
func golden(t *testing.T, name string, r *Registry) {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if b.String() != string(want) {
		t.Errorf("exposition differs from %s:\n--- got ---\n%s--- want ---\n%s", path, b.String(), want)
	}
}

// TestGoldenScalars locks the family ordering (sorted by name regardless of
// registration order) and the counter/gauge sample syntax.
func TestGoldenScalars(t *testing.T) {
	r := NewRegistry()
	// Registered deliberately out of name order.
	r.Gauge("scrubber_window_records", "Records inside the sliding training window.").Set(12345)
	r.Counter("scrubber_rounds_total", "Completed training rounds.").Add(3)
	v := r.CounterVec("collector_datagrams_total", "Datagrams received.", "proto")
	v.With("sflow").Add(100)
	v.With("ipfix").Add(42)
	r.Gauge("balancer_reduction_ratio", "Share of records dropped by balancing.").Set(0.9973)
	golden(t, "scalars", r)
}

// TestGoldenHistogram locks bucket cumulativeness: each le bucket must
// include every observation below its bound, the +Inf bucket must equal
// _count, and _sum must be the exact total.
func TestGoldenHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("train_duration_seconds", "Training round wall time.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.25, 2, 2, 30} {
		h.Observe(v)
	}
	hv := r.HistogramVec("predict_latency_seconds", "Per-batch classification latency.", []float64{0.001, 0.01}, "model")
	hv.With("XGB").Observe(0.0005)
	hv.With("XGB").Observe(0.5)
	hv.With("RBC").Observe(0.002)
	golden(t, "histogram", r)
}

// TestGoldenEscaping locks help and label-value escaping: backslashes,
// quotes, and newlines must round-trip through the text format.
func TestGoldenEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("weird_labels", "Help with \\ backslash and\nnewline.", "path", "quote")
	v.With(`C:\flows\dump`, `say "hi"`).Set(1)
	v.With("line\nbreak", "").Set(2)
	golden(t, "escaping", r)
}

// TestGoldenLabelOrdering locks child ordering within a family: samples
// sort by label values, so scrapes are diffable across restarts.
func TestGoldenLabelOrdering(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("bgp_messages_total", "BGP messages by type.", "type", "dir")
	for _, lv := range [][2]string{
		{"update", "in"}, {"keepalive", "in"}, {"update", "out"},
		{"notification", "in"}, {"keepalive", "out"},
	} {
		v.With(lv[0], lv[1]).Inc()
	}
	golden(t, "label_ordering", r)
}
