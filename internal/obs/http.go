package obs

import (
	"net/http"
	"net/http/pprof"
	"sync/atomic"
)

// Handler returns an http.Handler serving the registry in the Prometheus
// text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Health tracks the daemon's readiness. Liveness is implicit: a process
// that answers /healthz at all is alive. Readiness flips true once the
// first model has been trained — before that, the scrubber can ingest but
// not classify, so load balancers should not route scrape-and-block
// consumers to it yet.
type Health struct {
	ready atomic.Bool
}

// SetReady marks the daemon ready (or not).
func (h *Health) SetReady(v bool) { h.ready.Store(v) }

// Ready reports readiness.
func (h *Health) Ready() bool { return h.ready.Load() }

// LivenessHandler answers 200 while the process runs.
func (h *Health) LivenessHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
}

// ReadinessHandler answers 200 once ready, 503 before.
func (h *Health) ReadinessHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !h.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte("not ready: no trained model yet\n"))
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ready\n"))
	})
}

// NewMux returns the daemon's observability mux: /metrics (exposition),
// /healthz (liveness), /readyz (readiness), and the net/http/pprof
// handlers under /debug/pprof/. The pprof handlers are wired explicitly so
// nothing leaks onto http.DefaultServeMux.
func NewMux(r *Registry, h *Health) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/healthz", h.LivenessHandler())
	mux.Handle("/readyz", h.ReadinessHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
