package sketch

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// zipfStream builds a deterministic skewed stream: key i appears with
// geometric-ish frequency, so a few keys dominate — the traffic shape the
// aggregator's sketch mode is built for.
func zipfStream(seed int64, keys, updates int) map[uint64][2]uint64 {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.3, 4, uint64(keys-1))
	truth := make(map[uint64][2]uint64)
	for i := 0; i < updates; i++ {
		k := z.Uint64() + 1
		b := uint64(rng.Intn(1400) + 64)
		p := b/512 + 1
		t := truth[k]
		t[0] += b
		t[1] += p
		truth[k] = t
	}
	return truth
}

func replay(truth map[uint64][2]uint64, f func(k, b, p uint64)) {
	// Deterministic order: ascending key. The structures are order-sensitive
	// (eviction), so tests that compare two replays use the same order.
	keys := make([]uint64, 0, len(truth))
	for k := range truth {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, k := range keys {
		f(k, truth[k][0], truth[k][1])
	}
}

func TestCountMinNeverUnderCounts(t *testing.T) {
	truth := zipfStream(1, 4096, 20000)
	cm := NewCountMin(1024, 3)
	replay(truth, func(k, b, p uint64) { cm.Update(k, b, p) })
	for k, want := range truth {
		gotB, gotP := cm.Estimate(k)
		if gotB < want[0] || gotP < want[1] {
			t.Fatalf("key %d under-counted: got (%d,%d) want >= (%d,%d)", k, gotB, gotP, want[0], want[1])
		}
	}
}

func TestCountMinConservativeTighterThanBound(t *testing.T) {
	truth := zipfStream(2, 4096, 20000)
	cm := NewCountMin(2048, 3)
	var totalB uint64
	replay(truth, func(k, b, p uint64) {
		cm.Update(k, b, p)
		totalB += b
	})
	// The classic bound is total/width per row; conservative update should
	// stay well inside it on a skewed stream. Assert the mean absolute
	// over-count is below the classic bound.
	var overSum, n float64
	for k, want := range truth {
		gotB, _ := cm.Estimate(k)
		overSum += float64(gotB - want[0])
		n++
	}
	bound := float64(totalB) / 2048
	if overSum/n > bound {
		t.Fatalf("mean over-count %.1f exceeds classic bound %.1f", overSum/n, bound)
	}
}

func TestCountMinDeterministicAndRoundTrip(t *testing.T) {
	truth := zipfStream(3, 512, 5000)
	a, b := NewCountMin(256, 2), NewCountMin(256, 2)
	replay(truth, func(k, by, p uint64) { a.Update(k, by, p); b.Update(k, by, p) })
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical streams produced different count-min state")
	}
	var c CountMin
	if err := c.UnmarshalBinary(a.AppendBinary(nil)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.cells, c.cells) || a.width != c.width || a.depth != c.depth {
		t.Fatal("count-min binary round trip lost state")
	}
	a.Reset()
	if gb, gp := a.Estimate(1); gb != 0 || gp != 0 {
		t.Fatal("reset did not clear cells")
	}
}

func TestCountMinUpdateAllocs(t *testing.T) {
	cm := NewCountMin(1024, 3)
	if avg := testing.AllocsPerRun(500, func() { cm.Update(12345, 100, 1) }); avg != 0 {
		t.Errorf("CountMin.Update allocates %.1f objects/op, want 0", avg)
	}
}

func TestSpaceSavingHeavyHitterGuarantee(t *testing.T) {
	truth := zipfStream(4, 2048, 30000)
	const k = 64
	ss := NewSpaceSaving(k, 0)
	var total uint64
	replay(truth, func(key, b, p uint64) {
		ss.Add(key, b, p)
		total += b
	})
	bar := total / k
	for key, want := range truth {
		if want[0] <= bar {
			continue
		}
		if !ss.Has(key) {
			t.Fatalf("heavy hitter %d (bytes %d > total/k %d) not monitored", key, want[0], bar)
		}
	}
	// Estimates over-count by at most the recorded error; W-E is a lower bound.
	for _, e := range ss.Entries() {
		want, ok := truth[e.Key]
		if !ok {
			continue
		}
		if e.W[0] < want[0] || e.W[0]-e.E[0] > want[0] {
			t.Fatalf("key %d: estimate %d err %d outside [true, true+err] for true %d",
				e.Key, e.W[0], e.E[0], want[0])
		}
		if e.W[1] < want[1] || e.W[1]-e.E[1] > want[1] {
			t.Fatalf("key %d: packet estimate %d err %d outside bounds for true %d",
				e.Key, e.W[1], e.E[1], want[1])
		}
	}
}

func TestSpaceSavingDeterministicAndRoundTrip(t *testing.T) {
	truth := zipfStream(5, 512, 8000)
	a, b := NewSpaceSaving(32, 1), NewSpaceSaving(32, 1)
	replay(truth, func(k, by, p uint64) { a.Add(k, by, p); b.Add(k, by, p) })
	if !reflect.DeepEqual(a.entries, b.entries) {
		t.Fatal("identical streams produced different space-saving state")
	}
	var c SpaceSaving
	if err := c.UnmarshalBinary(a.AppendBinary(nil)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.entries, c.entries) || c.k != a.k || c.primary != a.primary {
		t.Fatal("space-saving binary round trip lost state")
	}
	// Restored summaries must keep evolving identically.
	a.Add(99999, 10, 1)
	c.Add(99999, 10, 1)
	if !reflect.DeepEqual(a.entries, c.entries) {
		t.Fatal("restored summary diverged on next update")
	}
}

func TestSpaceSavingMinAndReset(t *testing.T) {
	ss := NewSpaceSaving(2, 0)
	if ss.Min() != 0 {
		t.Fatal("empty summary must have zero admission bar")
	}
	ss.Add(1, 10, 1)
	ss.Add(2, 20, 1)
	if got := ss.Min(); got != 10 {
		t.Fatalf("min = %d, want 10", got)
	}
	// Evicting key 1 (min) must carry its counters as error.
	ss.Add(3, 5, 1)
	if ss.Has(1) || !ss.Has(3) {
		t.Fatal("eviction picked the wrong victim")
	}
	for _, e := range ss.Entries() {
		if e.Key == 3 && (e.W[0] != 15 || e.E[0] != 10) {
			t.Fatalf("admitted entry = %+v, want W0=15 E0=10", e)
		}
	}
	ss.Reset()
	if ss.Len() != 0 || ss.Has(3) || ss.Min() != 0 {
		t.Fatal("reset did not clear the summary")
	}
}

func TestSpaceSavingSteadyStateAllocs(t *testing.T) {
	ss := NewSpaceSaving(32, 0)
	for k := uint64(0); k < 64; k++ {
		ss.Add(k, k+1, 1)
	}
	k := uint64(0)
	if avg := testing.AllocsPerRun(500, func() {
		ss.Add(k%64, 10, 1) // mix of monitored touches and evictions
		k++
	}); avg != 0 {
		t.Errorf("SpaceSaving.Add allocates %.2f objects/op steady-state, want 0", avg)
	}
}

func TestHLLEstimateWithinTolerance(t *testing.T) {
	for _, n := range []int{10, 100, 1000, 50000} {
		h := NewHLL(12) // ~1.6% standard error
		for i := 0; i < n; i++ {
			h.AddKey(uint64(i) * 2654435761)
		}
		got := h.Estimate()
		relErr := math.Abs(got-float64(n)) / float64(n)
		if relErr > 0.1 {
			t.Errorf("n=%d: estimate %.0f off by %.1f%%", n, got, relErr*100)
		}
	}
}

func TestHLLMergeAndRoundTrip(t *testing.T) {
	a, b := NewHLL(10), NewHLL(10)
	for i := 0; i < 500; i++ {
		a.AddKey(uint64(i))
		b.AddKey(uint64(i + 250)) // half overlap
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	got := a.Estimate()
	if math.Abs(got-750)/750 > 0.15 {
		t.Errorf("merged estimate %.0f, want ~750", got)
	}
	var c HLL
	if err := c.UnmarshalBinary(a.AppendBinary(nil)); err != nil {
		t.Fatal(err)
	}
	if c.Estimate() != a.Estimate() {
		t.Fatal("hll binary round trip changed the estimate")
	}
	if err := a.Merge(NewHLL(8)); err == nil {
		t.Fatal("merging mismatched precisions must fail")
	}
	if got := HLLPrecisionFor(0.05); got < 8 || got > 12 {
		t.Errorf("HLLPrecisionFor(0.05) = %d", got)
	}
}

func TestHLLAddAllocs(t *testing.T) {
	h := NewHLL(10)
	if avg := testing.AllocsPerRun(500, func() { h.AddKey(42) }); avg != 0 {
		t.Errorf("HLL.AddKey allocates %.1f objects/op, want 0", avg)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	garbage := [][]byte{nil, {1, 2, 3}, make([]byte, 64)}
	for _, g := range garbage {
		if err := new(CountMin).UnmarshalBinary(g); err == nil {
			t.Error("count-min accepted garbage")
		}
		if err := new(SpaceSaving).UnmarshalBinary(g); err == nil {
			t.Error("space-saving accepted garbage")
		}
		if err := new(HLL).UnmarshalBinary(g); err == nil {
			t.Error("hll accepted garbage")
		}
	}
}
