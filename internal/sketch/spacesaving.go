package sketch

import (
	"encoding/binary"
	"fmt"
)

// Entry is one monitored key of a space-saving summary. W holds the summary's
// (over-)estimate of the key's accumulated bytes and packets; E holds the
// per-counter error bound inherited at admission time, so W-E is a guaranteed
// lower bound on the true totals.
type Entry struct {
	Key uint64
	W   [2]uint64 // estimated totals: bytes, packets
	E   [2]uint64 // admission error bounds: bytes, packets
}

// SpaceSaving is the Metwally stream-summary: at most K monitored keys, with
// the guarantee that any key whose true primary weight exceeds total/K is
// monitored, and every estimate over-counts by at most the admission error
// recorded in E. Both byte and packet totals are carried per entry; eviction
// is driven by the primary counter chosen at construction.
//
// Determinism: eviction victims are the minimum primary weight with ties
// broken by smallest key, so the summary is a pure function of the update
// sequence.
type SpaceSaving struct {
	k       int
	primary int // 0 = bytes, 1 = packets
	entries []Entry
	idx     map[uint64]int32

	minStale bool
	minIdx   int32
}

// NewSpaceSaving returns a summary monitoring at most k keys, evicting by
// primary counter (0 = bytes, 1 = packets).
func NewSpaceSaving(k, primary int) *SpaceSaving {
	if k < 1 {
		k = 1
	}
	if primary != 0 {
		primary = 1
	}
	return &SpaceSaving{
		k:        k,
		primary:  primary,
		entries:  make([]Entry, 0, k),
		idx:      make(map[uint64]int32, k),
		minStale: true,
	}
}

// K returns the summary capacity.
func (s *SpaceSaving) K() int { return s.k }

// Len returns the number of monitored keys.
func (s *SpaceSaving) Len() int { return len(s.entries) }

// Entries exposes the monitored set (unordered, aliased — callers must not
// retain across updates).
func (s *SpaceSaving) Entries() []Entry { return s.entries }

// Has reports whether key is currently monitored.
func (s *SpaceSaving) Has(key uint64) bool {
	_, ok := s.idx[key]
	return ok
}

// Min returns the smallest primary weight among monitored keys (0 when the
// summary is not yet full): the admission bar a new key must clear.
func (s *SpaceSaving) Min() uint64 {
	if len(s.entries) < s.k {
		return 0
	}
	return s.entries[s.minVictim()].W[s.primary]
}

// minVictim returns the index of the eviction victim: minimum primary
// weight, ties broken by smallest key.
func (s *SpaceSaving) minVictim() int32 {
	if !s.minStale {
		return s.minIdx
	}
	best := int32(0)
	for i := 1; i < len(s.entries); i++ {
		ei, eb := &s.entries[i], &s.entries[best]
		if ei.W[s.primary] < eb.W[s.primary] ||
			(ei.W[s.primary] == eb.W[s.primary] && ei.Key < eb.Key) {
			best = int32(i)
		}
	}
	s.minIdx, s.minStale = best, false
	return best
}

// Touch adds (bytes, pkts) to an already-monitored key and reports whether
// the key was monitored. It is the hot path: one map probe, no admission.
func (s *SpaceSaving) Touch(key uint64, bytes, pkts uint64) bool {
	i, ok := s.idx[key]
	if !ok {
		return false
	}
	e := &s.entries[i]
	e.W[0] += bytes
	e.W[1] += pkts
	if i == s.minIdx {
		s.minStale = true
	}
	return true
}

// Add updates key by (bytes, pkts), admitting it if unmonitored: into a free
// slot while the summary is filling, else by evicting the minimum entry and
// inheriting its counters as the admission error (the classic space-saving
// rule, applied to both counters).
func (s *SpaceSaving) Add(key uint64, bytes, pkts uint64) {
	if s.Touch(key, bytes, pkts) {
		return
	}
	if len(s.entries) < s.k {
		s.idx[key] = int32(len(s.entries))
		s.entries = append(s.entries, Entry{Key: key, W: [2]uint64{bytes, pkts}})
		s.minStale = true
		return
	}
	v := s.minVictim()
	e := &s.entries[v]
	delete(s.idx, e.Key)
	s.idx[key] = v
	*e = Entry{Key: key, W: [2]uint64{e.W[0] + bytes, e.W[1] + pkts}, E: e.W}
	s.minStale = true
}

// WillEvict reports whether Add(key, ...) would evict a monitored entry:
// the summary is full and key is not monitored. Callers use it to snapshot
// exact pre-eviction state before the first lossy update.
func (s *SpaceSaving) WillEvict(key uint64) bool {
	if len(s.entries) < s.k {
		return false
	}
	_, ok := s.idx[key]
	return !ok
}

// clearIdx empties the key index. Deleting the handful of live keys beats a
// full map clear for the sparsely-used summaries a fresh minute leaves behind.
func (s *SpaceSaving) clearIdx() {
	if len(s.entries) <= 16 {
		for i := range s.entries {
			delete(s.idx, s.entries[i].Key)
		}
	} else {
		clear(s.idx)
	}
}

// CopyFrom replaces s's monitored set with o's — entries in o's insertion
// order, so the copy evolves exactly as o would — while keeping s's own
// capacity and primary counter. o must not hold more entries than s's
// capacity.
func (s *SpaceSaving) CopyFrom(o *SpaceSaving) {
	s.clearIdx()
	s.entries = append(s.entries[:0], o.entries...)
	for i := range s.entries {
		s.idx[s.entries[i].Key] = int32(i)
	}
	s.minStale = true
	s.minIdx = 0
}

// Reset empties the summary, keeping its allocations.
func (s *SpaceSaving) Reset() {
	s.clearIdx()
	s.entries = s.entries[:0]
	s.minStale = true
	s.minIdx = 0
}

// Footprint returns the steady-state heap bytes of the entry array and index.
func (s *SpaceSaving) Footprint() int {
	// Entry is 48 bytes; a map slot for (uint64, int32) costs roughly 16
	// bytes plus bucket overhead — 24 is a fair amortized figure.
	return s.k * (48 + 24)
}

// ssMagic guards serialized SpaceSaving state.
const ssMagic = uint32(0x5353_5331) // "SSS1"

// AppendBinary serializes the summary for checkpointing.
func (s *SpaceSaving) AppendBinary(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, ssMagic)
	dst = binary.BigEndian.AppendUint32(dst, uint32(s.k))
	dst = binary.BigEndian.AppendUint32(dst, uint32(s.primary))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(s.entries)))
	for i := range s.entries {
		e := &s.entries[i]
		dst = binary.BigEndian.AppendUint64(dst, e.Key)
		dst = binary.BigEndian.AppendUint64(dst, e.W[0])
		dst = binary.BigEndian.AppendUint64(dst, e.W[1])
		dst = binary.BigEndian.AppendUint64(dst, e.E[0])
		dst = binary.BigEndian.AppendUint64(dst, e.E[1])
	}
	return dst
}

// UnmarshalBinary restores state serialized by AppendBinary.
func (s *SpaceSaving) UnmarshalBinary(data []byte) error {
	if len(data) < 16 || binary.BigEndian.Uint32(data) != ssMagic {
		return fmt.Errorf("sketch: bad space-saving header")
	}
	k := int(binary.BigEndian.Uint32(data[4:]))
	primary := int(binary.BigEndian.Uint32(data[8:]))
	n := int(binary.BigEndian.Uint32(data[12:]))
	if k < 1 || primary > 1 || n > k || len(data)-16 != n*40 {
		return fmt.Errorf("sketch: bad space-saving state k=%d n=%d", k, n)
	}
	s.k, s.primary = k, primary
	s.entries = make([]Entry, n, k)
	s.idx = make(map[uint64]int32, k)
	off := 16
	for i := range s.entries {
		e := &s.entries[i]
		e.Key = binary.BigEndian.Uint64(data[off:])
		e.W[0] = binary.BigEndian.Uint64(data[off+8:])
		e.W[1] = binary.BigEndian.Uint64(data[off+16:])
		e.E[0] = binary.BigEndian.Uint64(data[off+24:])
		e.E[1] = binary.BigEndian.Uint64(data[off+32:])
		s.idx[e.Key] = int32(i)
		off += 40
	}
	s.minStale = true
	s.minIdx = 0
	return nil
}
