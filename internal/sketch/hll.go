package sketch

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// HLL is a dense HyperLogLog distinct counter with 2^p single-byte
// registers. Keys must already be well-mixed 64-bit hashes (callers feed
// mix64 output); the top p bits select a register and the remainder's
// leading-zero run updates it.
//
// The harmonic sum Σ 2^-r over the registers is maintained incrementally as
// an exact 128-bit fixed-point integer (sumHi·2^64 + sumLo, in units of
// 2^-64), so Estimate is O(1) instead of a register scan, and — being an
// integer — is a pure function of the register multiset: update order,
// merges and checkpoint restores all converge to bit-identical estimates.
type HLL struct {
	p     uint8
	dense bool // true once touched overflowed; Reset must clear all registers
	zeros int
	sumHi uint64
	sumLo uint64
	reg   []uint8
	// touched lists the indices of set registers while the counter is
	// sparse, so Reset writes a handful of bytes instead of clearing the
	// whole register array — the common case for per-minute counters that
	// see few distinct values.
	touched []uint32
}

// NewHLL returns a counter with precision p (clamped to [4, 16]): 2^p
// registers, relative error ≈ 1.04/sqrt(2^p).
func NewHLL(p int) *HLL {
	if p < 4 {
		p = 4
	}
	if p > 16 {
		p = 16
	}
	h := &HLL{p: uint8(p), reg: make([]uint8, 1<<p)}
	h.zeros = len(h.reg)
	h.sumHi = uint64(len(h.reg)) // every register contributes 2^-0 = 1
	tc := len(h.reg) / 8
	if tc < 8 {
		tc = 8
	}
	h.touched = make([]uint32, 0, tc)
	return h
}

// contrib is register rank r's term of the harmonic sum, in 2^-64 units
// split into (hi, lo) 64-bit words: 2^(64-r) for r in [0, 64].
func contrib(r uint8) (hi, lo uint64) {
	if r == 0 {
		return 1, 0
	}
	return 0, 1 << (64 - r)
}

// HLLPrecisionFor returns the precision whose standard error is at most eps,
// clamped to [4, 12] so a per-group counter stays at most 4 KiB.
func HLLPrecisionFor(eps float64) int {
	if eps <= 0 {
		return 12
	}
	m := (1.04 / eps) * (1.04 / eps)
	p := int(math.Ceil(math.Log2(m)))
	if p < 4 {
		p = 4
	}
	if p > 12 {
		p = 12
	}
	return p
}

// Add observes one hashed value.
func (h *HLL) Add(hash uint64) {
	idx := hash >> (64 - h.p)
	rank := uint8(bits.LeadingZeros64(hash<<h.p|1)) + 1
	old := h.reg[idx]
	if rank <= old {
		return
	}
	h.reg[idx] = rank
	if old == 0 {
		h.zeros--
		if !h.dense {
			if len(h.touched) < cap(h.touched) {
				h.touched = append(h.touched, uint32(idx))
			} else {
				h.dense = true
			}
		}
	}
	oh, ol := contrib(old)
	var borrow uint64
	h.sumLo, borrow = bits.Sub64(h.sumLo, ol, 0)
	h.sumHi -= oh + borrow
	nh, nl := contrib(rank)
	var carry uint64
	h.sumLo, carry = bits.Add64(h.sumLo, nl, 0)
	h.sumHi += nh + carry
}

// recount rebuilds the incremental zero count and harmonic sum from the
// registers (after Merge or UnmarshalBinary). The register set is no longer
// tracked incrementally, so the counter turns dense.
func (h *HLL) recount() {
	h.zeros, h.sumHi, h.sumLo = 0, 0, 0
	for _, r := range h.reg {
		if r == 0 {
			h.zeros++
		}
		hi, lo := contrib(r)
		var carry uint64
		h.sumLo, carry = bits.Add64(h.sumLo, lo, 0)
		h.sumHi += hi + carry
	}
	h.dense = true
	h.touched = h.touched[:0]
}

// AddKey hashes an arbitrary key through mix64 and observes it.
func (h *HLL) AddKey(key uint64) { h.Add(mix64(key)) }

// lcTab caches the linear-counting correction m·ln(m/z) per precision, so
// the small-range branch of Estimate is a table lookup instead of a log call.
// Tables are built lazily; values are identical to computing the log inline.
var (
	lcOnce [17]sync.Once
	lcTab  [17][]float64
)

func lcTable(p uint8) []float64 {
	lcOnce[p].Do(func() {
		m := 1 << p
		t := make([]float64, m+1)
		fm := float64(m)
		for z := 1; z <= m; z++ {
			t[z] = fm * math.Log(fm/float64(z))
		}
		lcTab[p] = t
	})
	return lcTab[p]
}

// Estimate returns the cardinality estimate with the standard small-range
// (linear counting) correction. O(1): the harmonic sum is maintained by Add.
func (h *HLL) Estimate() float64 {
	m := float64(len(h.reg))
	sum := float64(h.sumHi) + float64(h.sumLo)/18446744073709551616.0
	alpha := 0.7213 / (1 + 1.079/m)
	switch len(h.reg) {
	case 16:
		alpha = 0.673
	case 32:
		alpha = 0.697
	case 64:
		alpha = 0.709
	}
	est := alpha * m * m / sum
	if est <= 2.5*m && h.zeros > 0 {
		est = lcTable(h.p)[h.zeros]
	}
	return est
}

// Merge folds other into h (register-wise max). Precisions must match.
func (h *HLL) Merge(other *HLL) error {
	if h.p != other.p {
		return fmt.Errorf("sketch: merging HLL precision %d into %d", other.p, h.p)
	}
	for i, r := range other.reg {
		if r > h.reg[i] {
			h.reg[i] = r
		}
	}
	h.recount()
	return nil
}

// Reset zeroes the registers, keeping the allocation. While the counter is
// sparse only the touched registers are written.
func (h *HLL) Reset() {
	if h.dense {
		clear(h.reg)
		h.dense = false
	} else {
		for _, i := range h.touched {
			h.reg[i] = 0
		}
	}
	h.touched = h.touched[:0]
	h.zeros = len(h.reg)
	h.sumHi = uint64(len(h.reg))
	h.sumLo = 0
}

// Footprint returns the register heap bytes.
func (h *HLL) Footprint() int { return len(h.reg) }

// hllMagic guards serialized HLL state.
const hllMagic = uint32(0x484c_4c31) // "HLL1"

// AppendBinary serializes the counter for checkpointing.
func (h *HLL) AppendBinary(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, hllMagic)
	dst = append(dst, h.p)
	return append(dst, h.reg...)
}

// UnmarshalBinary restores state serialized by AppendBinary.
func (h *HLL) UnmarshalBinary(data []byte) error {
	if len(data) < 5 || binary.BigEndian.Uint32(data) != hllMagic {
		return fmt.Errorf("sketch: bad hll header")
	}
	p := data[4]
	if p < 4 || p > 16 || len(data)-5 != 1<<p {
		return fmt.Errorf("sketch: bad hll precision %d for %d registers", p, len(data)-5)
	}
	h.p = p
	h.reg = append(h.reg[:0], data[5:]...)
	h.recount()
	return nil
}
