// Package sketch implements the bounded-memory streaming summaries behind
// the feature aggregator's sketch mode: a count-min sketch with conservative
// update (per-value byte/packet estimation and heavy-hitter admission
// filtering), a space-saving stream summary (top-K categorical rankings with
// per-entry error bounds), and a dense HyperLogLog (distinct counts).
//
// All three structures share the properties the aggregation pipeline needs:
//
//   - fixed footprint chosen at construction time, independent of stream
//     cardinality;
//   - deterministic state — no seeded process-local hashing, so two runs over
//     the same stream (or a checkpoint/restore pair) produce bit-identical
//     summaries;
//   - allocation-free updates once constructed (Add never allocates);
//   - estimates that only ever over-count, so heavy hitters are never missed,
//     only over-reported within a quantified error bound.
package sketch

import (
	"encoding/binary"
	"fmt"
	"math"
)

// mix64 is the splitmix64 finalizer: a cheap, statistically strong bijection
// used to derive row hashes from one 64-bit key. Being a fixed function (no
// per-process seed) keeps every sketch deterministic across runs and hosts.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// rowSeeds separate the count-min rows into independent hash functions.
var rowSeeds = [8]uint64{
	0x9e3779b97f4a7c15, 0xc2b2ae3d27d4eb4f, 0x165667b19e3779f9, 0x27d4eb2f165667c5,
	0x85ebca6b27d4eb4f, 0xff51afd7ed558ccd, 0xc4ceb9fe1a85ec53, 0x2545f4914f6cdd1d,
}

// CountMin is a count-min sketch whose cells carry two parallel uint64
// counters (bytes and packets), updated conservatively: a cell only grows to
// the new minimum estimate, which tightens over-counting on skewed streams.
type CountMin struct {
	width uint64 // cells per row, power of two
	depth int
	cells [][2]uint64 // depth rows of width cells, flattened
}

// NewCountMin returns a sketch with the given geometry. Width is rounded up
// to a power of two; depth is clamped to [1, 8]. The estimation error is
// bounded by total-weight/width per counter with high probability in depth.
func NewCountMin(width, depth int) *CountMin {
	if width < 2 {
		width = 2
	}
	w := uint64(1)
	for w < uint64(width) {
		w <<= 1
	}
	if depth < 1 {
		depth = 1
	}
	if depth > len(rowSeeds) {
		depth = len(rowSeeds)
	}
	return &CountMin{width: w, depth: depth, cells: make([][2]uint64, w*uint64(depth))}
}

// Update adds (bytes, pkts) to key and returns the post-update conservative
// estimate of the key's totals. The conservative rule raises each row cell
// only as far as the smallest estimate requires, so cells shared by colliding
// keys inflate as little as possible.
func (c *CountMin) Update(key uint64, bytes, pkts uint64) (estB, estP uint64) {
	estB, estP = math.MaxUint64, math.MaxUint64
	base := uint64(0)
	for d := 0; d < c.depth; d++ {
		i := base + (mix64(key^rowSeeds[d]) & (c.width - 1))
		cell := &c.cells[i]
		if cell[0] < estB {
			estB = cell[0]
		}
		if cell[1] < estP {
			estP = cell[1]
		}
		base += c.width
	}
	estB += bytes
	estP += pkts
	base = 0
	for d := 0; d < c.depth; d++ {
		i := base + (mix64(key^rowSeeds[d]) & (c.width - 1))
		cell := &c.cells[i]
		if cell[0] < estB {
			cell[0] = estB
		}
		if cell[1] < estP {
			cell[1] = estP
		}
		base += c.width
	}
	return estB, estP
}

// Estimate returns the conservative (bytes, pkts) estimate for key: the
// minimum cell over the rows. Estimates never under-count.
func (c *CountMin) Estimate(key uint64) (estB, estP uint64) {
	estB, estP = math.MaxUint64, math.MaxUint64
	base := uint64(0)
	for d := 0; d < c.depth; d++ {
		i := base + (mix64(key^rowSeeds[d]) & (c.width - 1))
		cell := c.cells[i]
		if cell[0] < estB {
			estB = cell[0]
		}
		if cell[1] < estP {
			estP = cell[1]
		}
		base += c.width
	}
	return estB, estP
}

// Reset zeroes every cell, keeping the allocation.
func (c *CountMin) Reset() {
	clear(c.cells)
}

// Footprint returns the heap bytes held by the cell array.
func (c *CountMin) Footprint() int { return len(c.cells) * 16 }

// cmMagic guards serialized CountMin state.
const cmMagic = uint32(0x434d_5331) // "CMS1"

// AppendBinary serializes the sketch (geometry + cells) for checkpointing.
func (c *CountMin) AppendBinary(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, cmMagic)
	dst = binary.BigEndian.AppendUint64(dst, c.width)
	dst = binary.BigEndian.AppendUint32(dst, uint32(c.depth))
	for _, cell := range c.cells {
		dst = binary.BigEndian.AppendUint64(dst, cell[0])
		dst = binary.BigEndian.AppendUint64(dst, cell[1])
	}
	return dst
}

// UnmarshalBinary restores state serialized by AppendBinary. The receiver's
// geometry is replaced by the serialized one.
func (c *CountMin) UnmarshalBinary(data []byte) error {
	if len(data) < 16 || binary.BigEndian.Uint32(data) != cmMagic {
		return fmt.Errorf("sketch: bad count-min header")
	}
	width := binary.BigEndian.Uint64(data[4:])
	depth := int(binary.BigEndian.Uint32(data[12:]))
	if width == 0 || width&(width-1) != 0 || depth < 1 || depth > len(rowSeeds) {
		return fmt.Errorf("sketch: bad count-min geometry width=%d depth=%d", width, depth)
	}
	n := width * uint64(depth)
	if uint64(len(data)-16) != n*16 {
		return fmt.Errorf("sketch: count-min payload %d bytes, want %d", len(data)-16, n*16)
	}
	c.width, c.depth = width, depth
	c.cells = make([][2]uint64, n)
	off := 16
	for i := range c.cells {
		c.cells[i][0] = binary.BigEndian.Uint64(data[off:])
		c.cells[i][1] = binary.BigEndian.Uint64(data[off+8:])
		off += 16
	}
	return nil
}
