package drift

import (
	"math"
	"testing"
)

func TestMerge(t *testing.T) {
	a := Stats{
		Samples: 100, FeaturePSIMean: 0.1, FeaturePSIMax: 0.3, MaxPSIColumn: 2,
		ScorePSI: 0.05, ShadowSamples: 40, Disagreement: 0.01,
	}
	b := Stats{
		Samples: 300, FeaturePSIMean: 0.5, FeaturePSIMax: 0.2, MaxPSIColumn: 7,
		ScorePSI: 0.25, ShadowSamples: 10, Disagreement: 0.04,
		RetrainRecommended: true,
	}
	m := Merge([]Stats{a, b})
	if m.Samples != 400 || m.ShadowSamples != 50 {
		t.Errorf("counts: samples=%d shadow=%d", m.Samples, m.ShadowSamples)
	}
	if m.FeaturePSIMax != 0.3 || m.MaxPSIColumn != 2 {
		t.Errorf("worst-site PSI: max=%v col=%d, want 0.3 col 2", m.FeaturePSIMax, m.MaxPSIColumn)
	}
	if m.ScorePSI != 0.25 || m.Disagreement != 0.04 {
		t.Errorf("score/disagreement max: %v %v", m.ScorePSI, m.Disagreement)
	}
	// Sample-weighted mean: (0.1*100 + 0.5*300) / 400 = 0.4.
	if math.Abs(m.FeaturePSIMean-0.4) > 1e-12 {
		t.Errorf("weighted mean = %v, want 0.4", m.FeaturePSIMean)
	}
	if !m.RetrainRecommended {
		t.Error("retrain flag not sticky")
	}
}

func TestMergeEmpty(t *testing.T) {
	m := Merge(nil)
	if m.Samples != 0 || m.FeaturePSIMean != 0 || m.RetrainRecommended {
		t.Errorf("empty merge not zero: %+v", m)
	}
	if m.MaxPSIColumn != -1 {
		t.Errorf("empty merge MaxPSIColumn = %d, want -1", m.MaxPSIColumn)
	}
}

// TestMergeIdleSitesDoNotDilute: a site with zero samples contributes
// nothing to the weighted mean — the drifting site's signal survives.
func TestMergeIdleSitesDoNotDilute(t *testing.T) {
	drifting := Stats{Samples: 10, FeaturePSIMean: 0.9, FeaturePSIMax: 0.9, MaxPSIColumn: 0}
	idle := Stats{MaxPSIColumn: -1}
	m := Merge([]Stats{idle, drifting, idle})
	if math.Abs(m.FeaturePSIMean-0.9) > 1e-12 {
		t.Errorf("idle sites diluted the mean: %v", m.FeaturePSIMean)
	}
}
