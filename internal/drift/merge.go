package drift

// Merge reduces per-site drift snapshots to one cluster-wide view. Counts
// (Samples, ShadowSamples) add; the PSI signals take the worst site, since
// one drifted vantage point is what a cluster operator must react to; the
// mean-PSI signal is sample-weighted so small idle sites cannot dilute a
// large drifting one; RetrainRecommended is sticky across sites.
func Merge(all []Stats) Stats {
	out := Stats{MaxPSIColumn: -1}
	var meanWeight uint64
	for _, s := range all {
		out.Samples += s.Samples
		out.ShadowSamples += s.ShadowSamples
		if s.FeaturePSIMax > out.FeaturePSIMax {
			out.FeaturePSIMax = s.FeaturePSIMax
			out.MaxPSIColumn = s.MaxPSIColumn
		}
		if s.ScorePSI > out.ScorePSI {
			out.ScorePSI = s.ScorePSI
		}
		if s.Disagreement > out.Disagreement {
			out.Disagreement = s.Disagreement
		}
		out.FeaturePSIMean += s.FeaturePSIMean * float64(s.Samples)
		meanWeight += s.Samples
		out.RetrainRecommended = out.RetrainRecommended || s.RetrainRecommended
	}
	if meanWeight > 0 {
		out.FeaturePSIMean /= float64(meanWeight)
	}
	return out
}
