package drift

import (
	"math"
	"math/rand/v2"
	"testing"
)

// gaussianMatrix draws rows of iid normals with per-column mean shift.
func gaussianMatrix(seed uint64, rows, cols int, shift float64) [][]float64 {
	rng := rand.New(rand.NewPCG(seed, 0))
	x := make([][]float64, rows)
	for i := range x {
		row := make([]float64, cols)
		for c := range row {
			row[c] = rng.NormFloat64() + shift
		}
		x[i] = row
	}
	return x
}

func TestPSIStableDistribution(t *testing.T) {
	train := gaussianMatrix(1, 2000, 4, 0)
	ref, err := NewReference(train, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(DefaultConfig())
	m.SetReference(ref)
	m.ObserveFeatures(gaussianMatrix(2, 2000, 4, 0)) // same distribution
	s := m.Stats()
	if s.Samples != 2000 {
		t.Fatalf("samples = %d", s.Samples)
	}
	if s.FeaturePSIMax > 0.1 {
		t.Errorf("stable distribution PSI max = %.4f, want < 0.1", s.FeaturePSIMax)
	}
	if s.RetrainRecommended {
		t.Error("stable distribution recommended retraining")
	}
}

func TestPSIDetectsShift(t *testing.T) {
	train := gaussianMatrix(1, 2000, 4, 0)
	ref, err := NewReference(train, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(DefaultConfig())
	m.SetReference(ref)
	m.ObserveFeatures(gaussianMatrix(2, 2000, 4, 2.0)) // two sigma shift
	s := m.Stats()
	if s.FeaturePSIMax < 0.25 {
		t.Errorf("shifted distribution PSI max = %.4f, want > 0.25", s.FeaturePSIMax)
	}
	if !s.RetrainRecommended {
		t.Error("two-sigma shift not flagged")
	}
	if s.MaxPSIColumn < 0 || s.MaxPSIColumn >= 4 {
		t.Errorf("max column = %d", s.MaxPSIColumn)
	}
}

func TestScorePSI(t *testing.T) {
	train := gaussianMatrix(1, 500, 2, 0)
	preds := make([]int, 500)
	for i := range preds {
		if i%10 == 0 { // 10% training positive rate
			preds[i] = 1
		}
	}
	ref, err := NewReference(train, preds, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(DefaultConfig())
	m.SetReference(ref)
	m.ObserveFeatures(gaussianMatrix(2, 500, 2, 0))

	// Same positive rate: negligible score PSI.
	same := make([]int, 500)
	for i := range same {
		if i%10 == 3 {
			same[i] = 1
		}
	}
	m.ObserveScores(same)
	if s := m.Stats(); s.ScorePSI > 0.01 {
		t.Errorf("matched positive rate score PSI = %.4f", s.ScorePSI)
	}

	// Now flood positives: 60% rate vs 10% reference must cross 0.25.
	m.SetReference(ref)
	m.ObserveFeatures(gaussianMatrix(3, 500, 2, 0))
	flood := make([]int, 500)
	for i := range flood {
		if i%10 < 6 {
			flood[i] = 1
		}
	}
	m.ObserveScores(flood)
	s := m.Stats()
	if s.ScorePSI < 0.25 {
		t.Errorf("flooded score PSI = %.4f, want > 0.25", s.ScorePSI)
	}
	if !s.RetrainRecommended {
		t.Error("score flood not flagged")
	}
}

func TestShadowDisagreement(t *testing.T) {
	m := NewMonitor(DefaultConfig())
	// Shadow disagreement works without a feature reference.
	champ := make([]int, 100)
	chall := make([]int, 100)
	for i := 0; i < 5; i++ {
		chall[i] = 1 // 5% disagreement
	}
	m.ObserveShadow(champ, chall)
	s := m.Stats()
	if s.ShadowSamples != 100 {
		t.Fatalf("shadow samples = %d", s.ShadowSamples)
	}
	if math.Abs(s.Disagreement-0.05) > 1e-12 {
		t.Fatalf("disagreement = %v", s.Disagreement)
	}
	if !s.RetrainRecommended {
		t.Error("5% disagreement (threshold 2%) not flagged")
	}

	// Below threshold: quiet.
	m.SetReference(nil)
	m.ObserveShadow(champ, champ)
	if s := m.Stats(); s.Disagreement != 0 || s.RetrainRecommended {
		t.Errorf("identical verdicts: %+v", s)
	}
}

func TestMinCountGate(t *testing.T) {
	train := gaussianMatrix(1, 1000, 2, 0)
	ref, err := NewReference(train, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(DefaultConfig())
	m.SetReference(ref)
	m.ObserveFeatures(gaussianMatrix(2, 10, 2, 5.0)) // wildly shifted but tiny
	if s := m.Stats(); s.RetrainRecommended || s.FeaturePSIMax != 0 {
		t.Errorf("below MinCount: %+v", s)
	}
}

func TestDeterministicStats(t *testing.T) {
	run := func() Stats {
		train := gaussianMatrix(7, 800, 5, 0)
		ref, err := NewReference(train, nil, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		m := NewMonitor(DefaultConfig())
		m.SetReference(ref)
		m.ObserveFeatures(gaussianMatrix(8, 400, 5, 0.5))
		m.ObserveFeatures(gaussianMatrix(9, 400, 5, 0.7))
		m.ObserveScores([]int{1, 0, 1, 0, 0, 0, 1})
		m.ObserveShadow([]int{1, 0, 1}, []int{1, 1, 1})
		return m.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("stats not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestConstantColumn(t *testing.T) {
	// A constant column collapses all quantile edges; PSI must stay 0 when
	// serving data is also constant, and finite when it is not.
	rows := 200
	x := make([][]float64, rows)
	for i := range x {
		x[i] = []float64{3.14}
	}
	ref, err := NewReference(x, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(DefaultConfig())
	m.SetReference(ref)
	m.ObserveFeatures(x)
	if s := m.Stats(); s.FeaturePSIMax != 0 {
		t.Errorf("constant/constant PSI = %v", s.FeaturePSIMax)
	}
	shifted := make([][]float64, rows)
	for i := range shifted {
		shifted[i] = []float64{99.0}
	}
	m.SetReference(ref)
	m.ObserveFeatures(shifted)
	s := m.Stats()
	if math.IsInf(s.FeaturePSIMax, 0) || math.IsNaN(s.FeaturePSIMax) {
		t.Errorf("constant-shift PSI not finite: %v", s.FeaturePSIMax)
	}
}

func TestNaNBin(t *testing.T) {
	train := gaussianMatrix(1, 500, 2, 0)
	ref, err := NewReference(train, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(DefaultConfig())
	m.SetReference(ref)
	nan := make([][]float64, 200)
	for i := range nan {
		nan[i] = []float64{math.NaN(), math.NaN()}
	}
	m.ObserveFeatures(nan)
	s := m.Stats()
	if s.FeaturePSIMax <= 0.25 {
		t.Errorf("all-NaN serving data PSI = %v, want > 0.25", s.FeaturePSIMax)
	}
	if math.IsNaN(s.FeaturePSIMax) {
		t.Error("NaN leaked into PSI")
	}
}

func TestEmptyReference(t *testing.T) {
	if _, err := NewReference(nil, nil, DefaultConfig()); err == nil {
		t.Fatal("empty reference accepted")
	}
}

func TestOfflineFeaturePSI(t *testing.T) {
	train := gaussianMatrix(1, 1000, 3, 0)
	ref, err := NewReference(train, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Offline batch must agree with the monitor fed the same matrix.
	eval := gaussianMatrix(2, 1000, 3, 1.0)
	mean, max, col := ref.FeaturePSI(eval)
	m := NewMonitor(DefaultConfig())
	m.SetReference(ref)
	m.ObserveFeatures(eval)
	s := m.Stats()
	if mean != s.FeaturePSIMean || max != s.FeaturePSIMax || col != s.MaxPSIColumn {
		t.Fatalf("offline (%v, %v, %d) != monitor (%v, %v, %d)",
			mean, max, col, s.FeaturePSIMean, s.FeaturePSIMax, s.MaxPSIColumn)
	}
}

func BenchmarkObserveFeatures(b *testing.B) {
	train := gaussianMatrix(1, 2000, 44, 0)
	ref, err := NewReference(train, nil, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	m := NewMonitor(DefaultConfig())
	m.SetReference(ref)
	batch := gaussianMatrix(2, 100, 44, 0.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ObserveFeatures(batch)
	}
}

func BenchmarkStats(b *testing.B) {
	train := gaussianMatrix(1, 2000, 44, 0)
	ref, err := NewReference(train, nil, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	m := NewMonitor(DefaultConfig())
	m.SetReference(ref)
	m.ObserveFeatures(gaussianMatrix(2, 1000, 44, 0.1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Stats()
	}
}
