// Package drift computes streaming model-drift statistics on the serving
// path — the operational half of the paper's Section 5 temporal-decay story
// (Fig. 10/11: models rot as attack vectors and reflector pools churn).
//
// Three signals, all cheap enough for the per-minute hot path:
//
//   - Feature PSI: Population Stability Index of the WoE-encoded feature
//     distributions against a reference histogram frozen from the
//     champion's training window. PSI = Σ (p−q)·ln(p/q) over quantile
//     bins; the conventional reading is <0.1 stable, 0.1–0.25 shifting,
//     >0.25 drifted.
//   - Score PSI: the same index over the classifier's verdict distribution
//     (binary, so two bins) — a model whose positive rate wanders from its
//     training positive rate is seeing a different world.
//   - Shadow disagreement: the fraction of records where champion and
//     challenger disagree. Only the champion's verdict reaches the ACL
//     writer; the challenger scores the same encoded matrix in shadow.
//
// Crossing any configured threshold raises RetrainRecommended. The package
// is pure computation over caller-supplied data: deterministic for a given
// observation sequence, no clocks, no goroutines.
package drift

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Config sets binning and alerting thresholds.
type Config struct {
	// Bins is the number of quantile bins per feature (default 10).
	Bins int
	// MinCount is the minimum number of observed rows before PSI values
	// are considered meaningful; below it Stats reports zeros and never
	// recommends retraining (default 50).
	MinCount int
	// PSIThreshold flags feature drift when any column's PSI crosses it
	// (default 0.25, the conventional "significant shift" mark).
	PSIThreshold float64
	// ScorePSIThreshold flags verdict-distribution drift (default 0.25).
	ScorePSIThreshold float64
	// DisagreementThreshold flags champion/challenger divergence as the
	// fraction of records with differing verdicts (default 0.02).
	DisagreementThreshold float64
}

// DefaultConfig returns the production thresholds.
func DefaultConfig() Config {
	return Config{
		Bins:                  10,
		MinCount:              50,
		PSIThreshold:          0.25,
		ScorePSIThreshold:     0.25,
		DisagreementThreshold: 0.02,
	}
}

func (c Config) withDefaults() Config {
	if c.Bins <= 0 {
		c.Bins = 10
	}
	if c.MinCount <= 0 {
		c.MinCount = 50
	}
	if c.PSIThreshold <= 0 {
		c.PSIThreshold = 0.25
	}
	if c.ScorePSIThreshold <= 0 {
		c.ScorePSIThreshold = 0.25
	}
	if c.DisagreementThreshold <= 0 {
		c.DisagreementThreshold = 0.02
	}
	return c
}

// Reference is the frozen training-window view PSI compares against:
// per-column quantile bin edges with expected counts, plus the training
// verdict distribution. Build one per published model and store it next to
// the champion pointer; it is immutable after construction.
type Reference struct {
	bins    int
	cols    int
	edges   [][]float64 // per column: bins-1 ascending cut points
	counts  [][]uint64  // per column: bins+1 (last = NaN/invalid)
	rows    uint64
	posRate float64
	pos     uint64
	n       uint64
}

// NewReference builds the reference from the champion's training-window
// encoded feature matrix and its verdicts on that window. preds may be nil
// when no verdicts exist (score PSI then reports zero).
func NewReference(x [][]float64, preds []int, cfg Config) (*Reference, error) {
	cfg = cfg.withDefaults()
	if len(x) == 0 {
		return nil, fmt.Errorf("drift: empty reference matrix")
	}
	cols := len(x[0])
	r := &Reference{
		bins:   cfg.Bins,
		cols:   cols,
		edges:  make([][]float64, cols),
		counts: make([][]uint64, cols),
		rows:   uint64(len(x)),
	}
	col := make([]float64, 0, len(x))
	for c := 0; c < cols; c++ {
		col = col[:0]
		for _, row := range x {
			if c < len(row) && !math.IsNaN(row[c]) {
				col = append(col, row[c])
			}
		}
		sort.Float64s(col)
		r.edges[c] = quantileEdges(col, cfg.Bins)
		counts := make([]uint64, cfg.Bins+1)
		for _, row := range x {
			var v float64 = math.NaN()
			if c < len(row) {
				v = row[c]
			}
			counts[binOf(r.edges[c], cfg.Bins, v)]++
		}
		r.counts[c] = counts
	}
	for _, p := range preds {
		if p == 1 {
			r.pos++
		}
		r.n++
	}
	if r.n > 0 {
		r.posRate = float64(r.pos) / float64(r.n)
	}
	return r, nil
}

// Columns returns the number of feature columns the reference covers.
func (r *Reference) Columns() int { return r.cols }

// quantileEdges picks bins-1 ascending cut points from sorted values.
// Duplicate quantiles collapse (constant columns yield zero usable edges;
// every value then lands in bin 0 and contributes no PSI).
func quantileEdges(sorted []float64, bins int) []float64 {
	edges := make([]float64, 0, bins-1)
	if len(sorted) == 0 {
		return edges
	}
	for i := 1; i < bins; i++ {
		idx := i * len(sorted) / bins
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		e := sorted[idx]
		if len(edges) == 0 || e > edges[len(edges)-1] {
			edges = append(edges, e)
		}
	}
	return edges
}

// binOf maps a value to its bin: 0..len(edges) by edge comparison, bins
// (the overflow slot) for NaN. Collapsed duplicate edges leave high bins
// permanently empty on both sides, which cancels in the PSI smoothing.
func binOf(edges []float64, bins int, v float64) int {
	if math.IsNaN(v) {
		return bins
	}
	// Binary search: first edge > v.
	lo, hi := 0, len(edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= edges[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// psiFromCounts computes PSI between two count histograms of equal length
// with additive smoothing (c+0.5)/(N+0.5B), so empty bins on either side
// contribute bounded, symmetric terms instead of infinities.
func psiFromCounts(expected, actual []uint64) float64 {
	var ne, na uint64
	for i := range expected {
		ne += expected[i]
		na += actual[i]
	}
	if ne == 0 || na == 0 {
		return 0
	}
	b := float64(len(expected))
	psi := 0.0
	for i := range expected {
		p := (float64(expected[i]) + 0.5) / (float64(ne) + 0.5*b)
		q := (float64(actual[i]) + 0.5) / (float64(na) + 0.5*b)
		psi += (q - p) * math.Log(q/p)
	}
	return psi
}

// Stats is one drift snapshot.
type Stats struct {
	// Samples is the number of rows observed against the current reference.
	Samples uint64
	// FeaturePSIMean / FeaturePSIMax aggregate per-column PSI.
	FeaturePSIMean float64
	FeaturePSIMax  float64
	// MaxPSIColumn is the column index behind FeaturePSIMax (-1 when no
	// data).
	MaxPSIColumn int
	// ScorePSI is the verdict-distribution PSI (2 bins).
	ScorePSI float64
	// ShadowSamples counts records scored by both champion and challenger.
	ShadowSamples uint64
	// Disagreement is the fraction of shadow-scored records whose
	// champion and challenger verdicts differ.
	Disagreement float64
	// RetrainRecommended is set when any threshold is crossed.
	RetrainRecommended bool
}

// Monitor accumulates serving-path observations against a reference.
// Safe for concurrent use; all accumulation is O(bins) per row.
type Monitor struct {
	cfg Config

	mu        sync.Mutex
	ref       *Reference
	counts    [][]uint64 // per column histogram of observed rows
	rows      uint64
	scorePos  uint64
	scoreN    uint64
	shadowN   uint64
	disagreeN uint64
}

// NewMonitor returns a monitor with no reference: observations are dropped
// until SetReference installs one.
func NewMonitor(cfg Config) *Monitor {
	return &Monitor{cfg: cfg.withDefaults()}
}

// Config returns the monitor's effective (defaulted) configuration.
func (m *Monitor) Config() Config { return m.cfg }

// SetReference installs the champion's training reference and resets every
// accumulator — a promotion starts a fresh comparison window. A nil
// reference disables accumulation.
func (m *Monitor) SetReference(ref *Reference) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ref = ref
	m.rows, m.scorePos, m.scoreN, m.shadowN, m.disagreeN = 0, 0, 0, 0, 0
	m.counts = nil
	if ref != nil {
		m.counts = make([][]uint64, ref.cols)
		for c := range m.counts {
			m.counts[c] = make([]uint64, ref.bins+1)
		}
	}
}

// ObserveFeatures folds one window's encoded feature matrix into the
// observed histograms.
func (m *Monitor) ObserveFeatures(x [][]float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ref == nil {
		return
	}
	for _, row := range x {
		for c := 0; c < m.ref.cols; c++ {
			var v float64 = math.NaN()
			if c < len(row) {
				v = row[c]
			}
			m.counts[c][binOf(m.ref.edges[c], m.ref.bins, v)]++
		}
	}
	m.rows += uint64(len(x))
}

// ObserveScores folds the champion's verdicts into the score distribution.
func (m *Monitor) ObserveScores(preds []int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ref == nil {
		return
	}
	for _, p := range preds {
		if p == 1 {
			m.scorePos++
		}
		m.scoreN++
	}
}

// ObserveShadow records paired champion/challenger verdicts. Slices must
// align; extra elements on either side are ignored.
func (m *Monitor) ObserveShadow(champion, challenger []int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := len(champion)
	if len(challenger) < n {
		n = len(challenger)
	}
	for i := 0; i < n; i++ {
		if champion[i] != challenger[i] {
			m.disagreeN++
		}
	}
	m.shadowN += uint64(n)
}

// Stats computes the current drift snapshot. Pure function of the
// accumulated counts: same observations, same stats, bit for bit.
func (m *Monitor) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{Samples: m.rows, MaxPSIColumn: -1, ShadowSamples: m.shadowN}
	if m.shadowN > 0 {
		s.Disagreement = float64(m.disagreeN) / float64(m.shadowN)
	}
	if m.ref != nil && m.rows >= uint64(m.cfg.MinCount) {
		sum := 0.0
		for c := 0; c < m.ref.cols; c++ {
			psi := psiFromCounts(m.ref.counts[c], m.counts[c])
			sum += psi
			if psi > s.FeaturePSIMax {
				s.FeaturePSIMax = psi
				s.MaxPSIColumn = c
			}
		}
		if m.ref.cols > 0 {
			s.FeaturePSIMean = sum / float64(m.ref.cols)
		}
		if m.ref.n > 0 && m.scoreN > 0 {
			exp := []uint64{m.ref.n - m.ref.pos, m.ref.pos}
			act := []uint64{m.scoreN - m.scorePos, m.scorePos}
			s.ScorePSI = psiFromCounts(exp, act)
		}
		s.RetrainRecommended = s.FeaturePSIMax > m.cfg.PSIThreshold ||
			s.ScorePSI > m.cfg.ScorePSIThreshold
	}
	if m.shadowN >= uint64(m.cfg.MinCount) && s.Disagreement > m.cfg.DisagreementThreshold {
		s.RetrainRecommended = true
	}
	return s
}

// PSI computes the Population Stability Index between an expected and an
// actual count histogram — exported for the temporal experiment, which
// compares eval-window feature histograms against a train-window reference
// offline.
func PSI(expected, actual []uint64) float64 {
	if len(expected) != len(actual) {
		return math.NaN()
	}
	return psiFromCounts(expected, actual)
}

// FeaturePSI computes per-column PSI of a matrix against the reference
// without touching any monitor state — the offline batch entry point.
func (r *Reference) FeaturePSI(x [][]float64) (mean, max float64, maxCol int) {
	counts := make([][]uint64, r.cols)
	for c := range counts {
		counts[c] = make([]uint64, r.bins+1)
	}
	for _, row := range x {
		for c := 0; c < r.cols; c++ {
			var v float64 = math.NaN()
			if c < len(row) {
				v = row[c]
			}
			counts[c][binOf(r.edges[c], r.bins, v)]++
		}
	}
	maxCol = -1
	sum := 0.0
	for c := 0; c < r.cols; c++ {
		psi := psiFromCounts(r.counts[c], counts[c])
		sum += psi
		if psi > max {
			max = psi
			maxCol = c
		}
	}
	if r.cols > 0 {
		mean = sum / float64(r.cols)
	}
	return mean, max, maxCol
}
