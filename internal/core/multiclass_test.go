package core

import (
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
)

func TestRulePredictorEndToEnd(t *testing.T) {
	bal, vectors := balancedFlows(t, 6, 300)
	records := synth.Records(bal)
	cut := len(records) * 2 / 3
	for cut < len(records) && records[cut].Minute() == records[cut-1].Minute() {
		cut++
	}
	s := New(DefaultConfig())
	if _, err := s.MineRules(records[:cut]); err != nil {
		t.Fatal(err)
	}
	train := s.Aggregate(records[:cut], vectors[:cut])
	test := s.Aggregate(records[cut:], vectors[cut:])
	if err := s.Fit(records[:cut], train); err != nil {
		t.Fatal(err)
	}

	rp := s.NewRulePredictor(6)
	if len(rp.RuleIDs) == 0 {
		t.Fatal("no predictable rules")
	}
	if err := rp.Fit(s, train); err != nil {
		t.Fatal(err)
	}
	pred, err := rp.Predict(s, test)
	if err != nil {
		t.Fatal(err)
	}
	acc := rp.Accuracy(test, pred)
	if acc < 0.7 {
		t.Errorf("multiclass rule prediction accuracy = %.3f, want > 0.7", acc)
	}
	// Predictions include both rule classes and benign.
	hasRule, hasBenign := false, false
	for _, p := range pred {
		if p >= 0 {
			hasRule = true
		} else {
			hasBenign = true
		}
	}
	if !hasRule || !hasBenign {
		t.Errorf("degenerate predictions: rule=%v benign=%v", hasRule, hasBenign)
	}
}

func TestRulePredictorErrors(t *testing.T) {
	s := New(DefaultConfig())
	rp := s.NewRulePredictor(4)
	if err := rp.Fit(s, nil); err == nil {
		t.Error("fit without rules accepted")
	}
	if _, err := rp.Predict(s, nil); err == nil {
		t.Error("predict before fit accepted")
	}
}
