package core

import (
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/balance"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
)

func BenchmarkTrainFlows(b *testing.B) {
	p := synth.ProfileUS2()
	p.Seed = 0xB1
	g := synth.NewGenerator(p)
	bal, _ := balance.Flows(1, g.Generate(0, 240))
	records := synth.Records(bal)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(DefaultConfig())
		if err := s.TrainFlows(records, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictAggregate(b *testing.B) {
	p := synth.ProfileUS2()
	p.Seed = 0xB2
	g := synth.NewGenerator(p)
	bal, _ := balance.Flows(2, g.Generate(0, 240))
	records := synth.Records(bal)
	s := New(DefaultConfig())
	if err := s.TrainFlows(records, nil); err != nil {
		b.Fatal(err)
	}
	aggs := s.Aggregate(records, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Predict(aggs[i%len(aggs) : i%len(aggs)+1]); err != nil {
			b.Fatal(err)
		}
	}
}
