package core

import (
	"math"
	"net/netip"
	"strings"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/acl"
	"github.com/ixp-scrubber/ixpscrubber/internal/balance"
	"github.com/ixp-scrubber/ixpscrubber/internal/features"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
	"github.com/ixp-scrubber/ixpscrubber/internal/woe"
)

// balancedFlows generates a balanced synthetic training corpus once per
// test binary.
func balancedFlows(t *testing.T, seed uint64, minutes int64) ([]synth.Flow, []string) {
	t.Helper()
	p := synth.ProfileUS1()
	p.Seed = seed
	g := synth.NewGenerator(p)
	flows := g.Generate(0, minutes)
	bal, _ := balance.Flows(seed, flows)
	vectors := make([]string, len(bal))
	for i := range bal {
		vectors[i] = bal[i].Vector
	}
	return bal, vectors
}

func TestScrubberXGBEndToEnd(t *testing.T) {
	bal, vectors := balancedFlows(t, 1, 360)
	records := synth.Records(bal)
	cut := len(records) * 2 / 3
	for cut < len(records) && records[cut].Minute() == records[cut-1].Minute() {
		cut++
	}
	s := New(DefaultConfig())
	if _, err := s.MineRules(records[:cut]); err != nil {
		t.Fatal(err)
	}
	train := s.Aggregate(records[:cut], vectors[:cut])
	test := s.Aggregate(records[cut:], vectors[cut:])
	if len(train) < 100 || len(test) < 30 {
		t.Fatalf("aggregates: %d train / %d test", len(train), len(test))
	}
	if err := s.Fit(records[:cut], train); err != nil {
		t.Fatal(err)
	}
	c, err := s.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if fb := c.FBeta(0.5); fb < 0.9 {
		t.Errorf("XGB Fβ = %.3f, want > 0.9 (paper: 0.989)", fb)
	}
}

func TestAllModelsTrainAndBeatChance(t *testing.T) {
	bal, vectors := balancedFlows(t, 2, 300)
	records := synth.Records(bal)
	cut := len(records) * 2 / 3
	for cut < len(records) && records[cut].Minute() == records[cut-1].Minute() {
		cut++
	}
	base := New(DefaultConfig())
	if _, err := base.MineRules(records[:cut]); err != nil {
		t.Fatal(err)
	}
	train := base.Aggregate(records[:cut], vectors[:cut])
	test := base.Aggregate(records[cut:], vectors[cut:])

	for _, model := range AllModels {
		s := New(Config{Model: model, Seed: 7, AutoAccept: true})
		s.SetRules(base.Rules())
		if err := s.Fit(records[:cut], train); err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		c, err := s.Evaluate(test)
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		fb := c.FBeta(0.5)
		switch model {
		case ModelDUM:
			if fb < 0.3 || fb > 0.7 {
				t.Errorf("DUM Fβ = %.3f, want ~0.5", fb)
			}
		case ModelNBB: // weakest real model in the paper (0.769)
			if fb < 0.55 {
				t.Errorf("%s Fβ = %.3f", model, fb)
			}
		case ModelRBC:
			// Aggregate-level rule matching is sensitive to which rules the
			// small training window surfaces; the paper-scale number (0.917
			// on the SAS) is reproduced by the table3 experiment.
			if fb < 0.62 {
				t.Errorf("RBC Fβ = %.3f, want > 0.62", fb)
			}
		default:
			if fb < 0.8 {
				t.Errorf("%s Fβ = %.3f, want > 0.8", model, fb)
			}
		}
	}
}

func TestUnknownModelRejected(t *testing.T) {
	s := New(Config{Model: "nope"})
	bal, _ := balancedFlows(t, 3, 60)
	records := synth.Records(bal)
	aggs := s.Aggregate(records, nil)
	if err := s.Fit(records, aggs); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestPredictBeforeFit(t *testing.T) {
	s := New(DefaultConfig())
	if _, err := s.Predict(nil); err == nil {
		t.Fatal("predict before fit must error")
	}
	if err := s.Fit(nil, nil); err == nil {
		t.Fatal("empty fit must error")
	}
}

func TestPerVectorEvaluation(t *testing.T) {
	s, test := quickScrubber(t)
	per, err := s.EvaluatePerVector(test)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) < 3 {
		t.Fatalf("vectors scored = %d", len(per))
	}
	if c, ok := per["NTP"]; ok {
		if c.FBeta(0.5) < 0.8 {
			t.Errorf("NTP Fβ = %.3f", c.FBeta(0.5))
		}
	} else {
		t.Error("NTP missing from per-vector scores")
	}
}

func quickScrubber(t *testing.T) (*Scrubber, []*features.Aggregate) {
	t.Helper()
	bal, vectors := balancedFlows(t, 4, 300)
	records := synth.Records(bal)
	cut := len(records) * 2 / 3
	for cut < len(records) && records[cut].Minute() == records[cut-1].Minute() {
		cut++
	}
	s := New(DefaultConfig())
	if _, err := s.MineRules(records[:cut]); err != nil {
		t.Fatal(err)
	}
	if err := s.Fit(records[:cut], s.Aggregate(records[:cut], vectors[:cut])); err != nil {
		t.Fatal(err)
	}
	return s, s.Aggregate(records[cut:], vectors[cut:])
}

func TestClassifierOnlyTransfer(t *testing.T) {
	// Train at one IXP, predict at another with the classifier transferred
	// and the WoE encoder fitted locally (Fig. 12 right). WoE magnitudes
	// grow with the log of per-value observation counts, so the transfer
	// precondition — satisfied by the paper's months-long windows at every
	// site — is that both encoders accumulate comparable statistics; the
	// local window below is sized accordingly (see Scrubber.WithEncoder).
	s, _ := quickScrubber(t)

	p2 := synth.ProfileUS2()
	p2.BenignFlowsPerMin = 500
	p2.EpisodeRatePerMin = 0.3
	g2 := synth.NewGenerator(p2)
	encFlows, _ := balance.Flows(8, g2.Generate(0, 600))
	encRecords := synth.Records(encFlows)
	bal2, _ := balance.Flows(9, g2.Generate(600, 900))
	rec2 := synth.Records(bal2)
	aggs2 := s.Aggregate(rec2, nil)

	full, err := s.Evaluate(aggs2)
	if err != nil {
		t.Fatal(err)
	}
	// Fit the local encoder on the destination's own balanced records.
	local := woe.NewEncoder()
	local.MinCount = 4
	for i := range encRecords {
		features.ObserveRecord(local, &encRecords[i])
	}
	local.Fit()
	transferred := s.WithEncoder(local)
	loc, err := transferred.Evaluate(aggs2)
	if err != nil {
		t.Fatal(err)
	}
	if loc.FBeta(0.5) < 0.78 {
		t.Errorf("classifier-only transfer Fβ = %.3f, want > 0.78 (paper: >0.98 with converged WoE)", loc.FBeta(0.5))
	}
	// Both transfer modes must stay far above chance; the local-vs-full
	// shape comparison across all site pairs is the fig12 experiment,
	// where every site's encoder sees a uniform window (the paper's
	// setting). At this test's window sizes, per-port WoE statistics have
	// not converged between sites, which caps local-encoder parity (see
	// EXPERIMENTS.md).
	if full.FBeta(0.5) < 0.85 {
		t.Errorf("full transfer Fβ = %.3f", full.FBeta(0.5))
	}
}

func TestFeatureImportance(t *testing.T) {
	s, _ := quickScrubber(t)
	imp, err := s.FeatureImportance()
	if err != nil {
		t.Fatal(err)
	}
	if len(imp) == 0 {
		t.Fatal("no importances")
	}
	if imp[0].Gain <= 0 {
		t.Errorf("top gain = %v", imp[0].Gain)
	}
	for i := 1; i < len(imp); i++ {
		if imp[i].Gain > imp[i-1].Gain {
			t.Fatal("importances not sorted")
		}
	}
	if !strings.Contains(imp[0].Column, "/") {
		t.Errorf("column name %q not mapped", imp[0].Column)
	}
	// Non-XGB models refuse.
	s2 := New(Config{Model: ModelDT})
	if _, err := s2.FeatureImportance(); err == nil {
		t.Error("DT importance must error")
	}
}

func TestExplain(t *testing.T) {
	s, test := quickScrubber(t)
	// Pick a positive aggregate.
	var target *features.Aggregate
	for _, a := range test {
		if a.Label && len(a.RuleIDs) > 0 {
			target = a
			break
		}
	}
	if target == nil {
		t.Fatal("no labeled aggregate with rule annotations")
	}
	ex, err := s.Explain(target)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Evidence) == 0 {
		t.Fatal("no evidence")
	}
	if len(ex.Rules) == 0 {
		t.Fatal("annotated rules missing from explanation")
	}
	if math.IsNaN(ex.Score) {
		t.Error("XGB explanation should carry a probability score")
	}
	out := ex.String()
	for _, want := range []string{"target", "rule", "WoE"} {
		if !strings.Contains(out, want) {
			t.Errorf("explanation output missing %q:\n%s", want, out)
		}
	}
	// Evidence sorted by |WoE|.
	for i := 1; i < len(ex.Evidence); i++ {
		if math.Abs(ex.Evidence[i].WoE) > math.Abs(ex.Evidence[i-1].WoE)+1e-12 {
			t.Fatal("evidence not sorted by |WoE|")
		}
	}
}

func TestOverrideFlipsDecision(t *testing.T) {
	// The §6.6 mitigation: a false-positive-ish decision can be moved by
	// pinning feature WoE values.
	s, test := quickScrubber(t)
	var pos *features.Aggregate
	for _, a := range test {
		pred, err := s.Predict([]*features.Aggregate{a})
		if err != nil {
			t.Fatal(err)
		}
		if pred[0] == 1 {
			pos = a
			break
		}
	}
	if pos == nil {
		t.Skip("no positive prediction found")
	}
	// Pin every categorical of this aggregate deeply negative.
	for c := 0; c < features.NumCats; c++ {
		for m := 0; m < features.NumMets; m++ {
			for r := 0; r < features.R; r++ {
				if pos.Present[c][m][r] {
					s.Encoder().Override(features.CatNames[c], pos.Keys[c][m][r], -8)
				}
			}
		}
	}
	pred, err := s.Predict([]*features.Aggregate{pos})
	if err != nil {
		t.Fatal(err)
	}
	if pred[0] != 0 {
		t.Error("whitelisting all feature values did not flip the decision")
	}
}

func TestGenerateACLs(t *testing.T) {
	s, test := quickScrubber(t)
	pred, err := s.Predict(test)
	if err != nil {
		t.Fatal(err)
	}
	var targets []netip.Addr
	for i, a := range test {
		if pred[i] == 1 {
			targets = append(targets, a.Target)
		}
	}
	if len(targets) == 0 {
		t.Skip("no positives")
	}
	entries := s.GenerateACLs(targets[:1], acl.ActionDrop)
	if len(entries) == 0 {
		t.Fatal("no ACL entries for a flagged target")
	}
	text := acl.RenderText(entries)
	if !strings.Contains(text, targets[0].String()) {
		t.Error("ACL does not reference the flagged target")
	}
}

func TestTrainFlows(t *testing.T) {
	bal, vectors := balancedFlows(t, 5, 240)
	records := synth.Records(bal)
	s := New(DefaultConfig())
	if err := s.TrainFlows(records, vectors); err != nil {
		t.Fatal(err)
	}
	if s.Rules().Len() == 0 {
		t.Error("TrainFlows mined no rules")
	}
	c, err := s.Evaluate(s.Aggregate(records, vectors))
	if err != nil {
		t.Fatal(err)
	}
	if c.FBeta(0.5) < 0.95 {
		t.Errorf("in-sample Fβ = %.3f", c.FBeta(0.5))
	}
}

// TestTrainDeterminism: identical inputs must give identical predictions —
// the whole pipeline is seeded, so any divergence means unordered map
// iteration (or similar) leaked into results.
func TestTrainDeterminism(t *testing.T) {
	bal, vectors := balancedFlows(t, 11, 180)
	records := synth.Records(bal)
	run := func() []int {
		s := New(DefaultConfig())
		if err := s.TrainFlows(records, vectors); err != nil {
			t.Fatal(err)
		}
		pred, err := s.Predict(s.Aggregate(records, vectors))
		if err != nil {
			t.Fatal(err)
		}
		return pred
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("prediction %d differs between identical training runs", i)
		}
	}
}
