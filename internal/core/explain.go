package core

import (
	"fmt"
	"math"
	"net/netip"
	"sort"
	"strings"

	"github.com/ixp-scrubber/ixpscrubber/internal/features"
	"github.com/ixp-scrubber/ixpscrubber/internal/ml"
	"github.com/ixp-scrubber/ixpscrubber/internal/tagging"
)

// FeatureEvidence is one categorical value's contribution to a decision.
type FeatureEvidence struct {
	// Domain is the WoE domain (src_ip, port_src, ...).
	Domain string
	// Value renders the categorical value human-readably.
	Value string
	// WoE is the encoded weight; positive pushes toward DDoS.
	WoE float64
}

// Explanation is the local explanation of one classification (Fig. 9):
// the decision, the matched tagging rules, and the WoE evidence per
// categorical value, so an operator can debug the decision and pin
// individual encodings (Encoder().Override) to correct it.
type Explanation struct {
	Target     netip.Addr
	Minute     int64
	Prediction int
	// Score is the classifier's continuous decision value when available
	// (probability for XGB/NN/DT, margin for LSVM/NB), else NaN.
	Score float64
	// Rules are the accepted tagging rules annotated on the aggregate.
	Rules []tagging.Rule
	// Evidence lists distinct categorical values by |WoE| descending.
	Evidence []FeatureEvidence
}

// String renders the explanation for terminal display.
func (e *Explanation) String() string {
	var b strings.Builder
	verdict := "benign"
	if e.Prediction == 1 {
		verdict = "DDoS"
	}
	fmt.Fprintf(&b, "target %s @minute %d -> %s", e.Target, e.Minute, verdict)
	if !math.IsNaN(e.Score) {
		fmt.Fprintf(&b, " (score %.3f)", e.Score)
	}
	b.WriteString("\n")
	for _, r := range e.Rules {
		fmt.Fprintf(&b, "  rule %s: %s\n", r.ID, r.String())
	}
	for _, ev := range e.Evidence {
		fmt.Fprintf(&b, "  %-9s %-22s WoE %+.2f\n", ev.Domain, ev.Value, ev.WoE)
	}
	return b.String()
}

// Explain produces the local explanation for one aggregate.
func (s *Scrubber) Explain(agg *features.Aggregate) (*Explanation, error) {
	pred, err := s.Predict([]*features.Aggregate{agg})
	if err != nil {
		return nil, err
	}
	ex := &Explanation{
		Target:     agg.Target,
		Minute:     agg.Minute,
		Prediction: pred[0],
		Score:      math.NaN(),
	}
	if s.pipeline != nil {
		row := features.Encode(s.encoder, agg, nil)
		transformed := s.pipeline.Transform([][]float64{row})
		if scorer, ok := s.pipeline.Model.(ml.Scorer); ok {
			ex.Score = scorer.Score(transformed[0])
		}
	}

	// Annotated rules.
	byID := map[string]tagging.Rule{}
	for _, r := range s.rules.Rules() {
		byID[r.ID] = r
	}
	for _, id := range agg.RuleIDs {
		if r, ok := byID[id]; ok {
			ex.Rules = append(ex.Rules, r)
		}
	}

	// Distinct categorical evidence sorted by |WoE|.
	type dk struct {
		cat int
		key uint64
	}
	seen := map[dk]struct{}{}
	for c := 0; c < features.NumCats; c++ {
		for m := 0; m < features.NumMets; m++ {
			for r := 0; r < features.R; r++ {
				if !agg.Present[c][m][r] {
					continue
				}
				k := dk{c, agg.Keys[c][m][r]}
				if _, dup := seen[k]; dup {
					continue
				}
				seen[k] = struct{}{}
				domain := features.CatNames[c]
				ex.Evidence = append(ex.Evidence, FeatureEvidence{
					Domain: domain,
					Value:  DisplayKey(c, k.key),
					WoE:    s.encoder.WoE(domain, k.key),
				})
			}
		}
	}
	sort.Slice(ex.Evidence, func(i, j int) bool {
		return math.Abs(ex.Evidence[i].WoE) > math.Abs(ex.Evidence[j].WoE)
	})
	return ex, nil
}

// DisplayKey renders a WoE key of the given categorical human-readably
// (IPv4 addresses, MACs, port and protocol numbers). IPv6 keys are hashes
// and render as hex.
func DisplayKey(cat int, key uint64) string {
	switch cat {
	case features.CatSrcIP:
		if key>>63 == 0 { // IPv4 keys are the raw 32-bit address
			return netip.AddrFrom4([4]byte{
				byte(key >> 24), byte(key >> 16), byte(key >> 8), byte(key),
			}).String()
		}
		return fmt.Sprintf("v6:%016x", key)
	case features.CatSrcMAC:
		return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x",
			byte(key>>40), byte(key>>32), byte(key>>24), byte(key>>16), byte(key>>8), byte(key))
	default:
		return fmt.Sprintf("%d", key)
	}
}
