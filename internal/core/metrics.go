package core

import (
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/features"
	"github.com/ixp-scrubber/ixpscrubber/internal/obs"
)

// Metrics instruments a Scrubber's training and classification paths. All
// observation helpers are nil-receiver safe, so an uninstrumented Scrubber
// (experiments, tests) pays only a nil check.
type Metrics struct {
	mineDuration   *obs.Histogram
	fitDuration    *obs.Histogram
	predictLatency *obs.Histogram
	predictions    *obs.Counter
	positives      *obs.Counter
	rulesMined     *obs.Counter
	rulesAccepted  *obs.Gauge

	featResident    *obs.Gauge
	featSketchBytes *obs.Gauge
	featRelError    *obs.Gauge
}

// RegisterMetrics creates the scrubber metric families on r.
func RegisterMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		mineDuration: r.Histogram("ixps_mine_duration_seconds",
			"Step 1 rule mining wall time per round.", nil),
		fitDuration: r.Histogram("ixps_fit_duration_seconds",
			"Step 2 training wall time per round (WoE fit + classifier fit).", nil),
		predictLatency: r.Histogram("ixps_predict_latency_seconds",
			"Classification wall time per Predict batch.", nil),
		predictions: r.Counter("ixps_predictions_total",
			"Per-target aggregates scored by the classifier."),
		positives: r.Counter("ixps_positives_total",
			"Aggregates classified as DDoS targets."),
		rulesMined: r.Counter("ixps_rules_mined_total",
			"Minimized rules produced by Step 1 mining rounds."),
		rulesAccepted: r.Gauge("ixps_rules_accepted",
			"Rules currently accepted into the tagging rule set."),
		featResident: r.Gauge("ixps_features_resident_groups",
			"Per-target aggregation groups resident at the last minute flush."),
		featSketchBytes: r.Gauge("ixps_features_sketch_bytes",
			"Steady-state heap bytes of the sketch aggregation structures (0 in exact mode)."),
		featRelError: r.Gauge("ixps_features_estimate_rel_error",
			"Relative error bound of the last flushed minute's sketch rankings (0 in exact mode)."),
	}
}

// featureMetrics adapts the scrubber metrics into the aggregator's per-flush
// gauge hooks.
func (m *Metrics) featureMetrics() *features.Metrics {
	if m == nil {
		return nil
	}
	return &features.Metrics{
		ResidentGroups:   m.featResident.Set,
		SketchBytes:      m.featSketchBytes.Set,
		EstimateRelError: m.featRelError.Set,
	}
}

// SetMetrics attaches metrics to the scrubber. Pass nil to detach.
func (s *Scrubber) SetMetrics(m *Metrics) { s.metrics = m }

func (m *Metrics) observeMine(start time.Time, minimized, accepted int) {
	if m == nil {
		return
	}
	m.mineDuration.ObserveSince(start)
	m.rulesMined.Add(uint64(minimized))
	m.rulesAccepted.Set(float64(accepted))
}

func (m *Metrics) observeFit(start time.Time) {
	if m == nil {
		return
	}
	m.fitDuration.ObserveSince(start)
}

func (m *Metrics) observePredict(start time.Time, pred []int) {
	if m == nil {
		return
	}
	m.predictLatency.ObserveSince(start)
	m.predictions.Add(uint64(len(pred)))
	var pos uint64
	for _, p := range pred {
		if p == 1 {
			pos++
		}
	}
	m.positives.Add(pos)
}
