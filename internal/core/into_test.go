package core

import (
	"bytes"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
)

// fitScrubberForInto trains a single-worker XGB scrubber plus a test
// window, shared across the Into tests.
func fitScrubberForInto(t *testing.T) (*Scrubber, [][]float64) {
	t.Helper()
	bal, vectors := balancedFlows(t, 5, 300)
	records := synth.Records(bal)
	cut := len(records) * 2 / 3
	for cut < len(records) && records[cut].Minute() == records[cut-1].Minute() {
		cut++
	}
	cfg := DefaultConfig()
	cfg.Workers = 1
	s := New(cfg)
	if _, err := s.MineRules(records[:cut]); err != nil {
		t.Fatal(err)
	}
	train := s.Aggregate(records[:cut], vectors[:cut])
	test := s.Aggregate(records[cut:], vectors[cut:])
	if err := s.Fit(records[:cut], train); err != nil {
		t.Fatal(err)
	}
	return s, s.EncodeFeatures(test)
}

// TestPredictEncodedIntoMatches pins the buffer-reuse serving path to
// PredictEncoded verdict for verdict, fitted and after a bundle
// round-trip.
func TestPredictEncodedIntoMatches(t *testing.T) {
	s, x := fitScrubberForInto(t)
	want, err := s.PredictEncoded(x)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int, len(x))
	for pass := 0; pass < 2; pass++ {
		if err := s.PredictEncodedInto(x, out); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("pass %d row %d: Into %d != PredictEncoded %d", pass, i, out[i], want[i])
			}
		}
	}

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.PredictEncodedInto(x, out); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("loaded bundle row %d: Into %d != fitted %d", i, out[i], want[i])
		}
	}

	if err := s.PredictEncodedInto(x, out[:1]); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// TestPredictEncodedIntoAllocs is the satellite gate: the single-worker
// serving path allocates nothing per call once the pipeline scratch has
// grown to the window size.
func TestPredictEncodedIntoAllocs(t *testing.T) {
	s, x := fitScrubberForInto(t)
	out := make([]int, len(x))
	if err := s.PredictEncodedInto(x, out); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(50, func() {
		if err := s.PredictEncodedInto(x, out); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("PredictEncodedInto allocates %v per run, want 0", n)
	}
}
