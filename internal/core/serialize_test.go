package core

import (
	"bytes"
	"strings"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
)

func TestBundleSaveLoadRoundTrip(t *testing.T) {
	s, test := quickScrubber(t)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Identical predictions on every test aggregate.
	want, err := s.Predict(test)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Predict(test)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("aggregate %d: prediction %d != %d after round trip", i, got[i], want[i])
		}
	}
	// Rules and encoder survive.
	if loaded.Rules().Len() != s.Rules().Len() {
		t.Errorf("rules: %d != %d", loaded.Rules().Len(), s.Rules().Len())
	}
	// Feature importance still maps to names.
	imp, err := loaded.FeatureImportance()
	if err != nil {
		t.Fatal(err)
	}
	if len(imp) == 0 || !strings.Contains(imp[0].Column, "/") {
		t.Errorf("importance after load: %+v", imp[:min(3, len(imp))])
	}
	// Explain still works on the loaded model.
	ex, err := loaded.Explain(test[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Evidence) == 0 {
		t.Error("no evidence after load")
	}
}

func TestBundleSaveRequiresFittedXGB(t *testing.T) {
	s := New(DefaultConfig())
	var buf bytes.Buffer
	if err := s.Save(&buf); err == nil {
		t.Error("unfitted scrubber saved")
	}
	bal, vectors := balancedFlows(t, 8, 120)
	records := synth.Records(bal)
	dt := New(Config{Model: ModelDT, AutoAccept: true})
	if err := dt.TrainFlows(records, vectors); err != nil {
		t.Fatal(err)
	}
	if err := dt.Save(&buf); err == nil {
		t.Error("DT bundle saved (XGB-only)")
	}
}

func TestBundleLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("{"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(bytes.NewReader([]byte(`{"version":9}`))); err == nil {
		t.Error("unknown version accepted")
	}
	if _, err := Load(bytes.NewReader([]byte(`{"version":1,"model":"DT"}`))); err == nil {
		t.Error("non-XGB bundle accepted")
	}
	if _, err := Load(bytes.NewReader([]byte(`{"version":1,"model":"XGB","kind":"half"}`))); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestClassifierOnlyBundleRoundTrip(t *testing.T) {
	s, test := quickScrubber(t)
	var buf bytes.Buffer
	if err := s.SaveClassifierOnly(&buf); err != nil {
		t.Fatal(err)
	}
	// The encoder must not travel: the serialized form is strictly smaller
	// than the full bundle and carries no encoder field.
	var full bytes.Buffer
	if err := s.Save(&full); err != nil {
		t.Fatal(err)
	}
	if buf.Len() >= full.Len() {
		t.Errorf("classifier-only bundle (%d bytes) not smaller than full (%d)", buf.Len(), full.Len())
	}
	if bytes.Contains(buf.Bytes(), []byte(`"encoder"`)) {
		t.Error("classifier-only bundle carries an encoder")
	}

	info, err := InspectBundle(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != BundleClassifierOnly || info.Model != ModelXGB {
		t.Errorf("inspect: %+v", info)
	}

	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Unbound: predicting must refuse until an encoder is attached.
	if _, err := loaded.Predict(test); err == nil {
		t.Fatal("unbound classifier-only bundle predicted")
	}
	// Re-bound to the exporter's own encoder, predictions match exactly
	// (same trees, same WoE tables).
	bound := loaded.WithEncoder(s.Encoder())
	want, err := s.Predict(test)
	if err != nil {
		t.Fatal(err)
	}
	got, err := bound.Predict(test)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("aggregate %d: prediction %d != %d after classifier-only round trip", i, got[i], want[i])
		}
	}
}

func TestInspectBundleFullDefault(t *testing.T) {
	s, _ := quickScrubber(t)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	info, err := InspectBundle(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != BundleFull {
		t.Errorf("kind = %q, want %q", info.Kind, BundleFull)
	}
	if _, err := InspectBundle([]byte("not json")); err == nil {
		t.Error("garbage inspected")
	}
}

func TestPredictEncodedMatchesPredict(t *testing.T) {
	s, test := quickScrubber(t)
	want, err := s.Predict(test)
	if err != nil {
		t.Fatal(err)
	}
	x := s.EncodeFeatures(test)
	got, err := s.PredictEncoded(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("aggregate %d: PredictEncoded %d != Predict %d", i, got[i], want[i])
		}
	}
}
