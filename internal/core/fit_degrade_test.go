package core

import (
	"reflect"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
)

// TestFitFailureKeepsLastGoodModel pins the graceful-degradation contract
// the daemon relies on: a failed retrain must leave the previously fitted
// encoder and pipeline serving, bit-identically.
func TestFitFailureKeepsLastGoodModel(t *testing.T) {
	bal, vectors := balancedFlows(t, 3, 240)
	records := synth.Records(bal)
	s := New(DefaultConfig())
	if _, err := s.MineRules(records); err != nil {
		t.Fatal(err)
	}
	train := s.Aggregate(records, vectors)
	if err := s.Fit(records, train); err != nil {
		t.Fatal(err)
	}
	before, err := s.Predict(train)
	if err != nil {
		t.Fatal(err)
	}
	encBefore := s.Encoder()

	// Sabotage the retrain: an unknown model makes pipeline construction
	// fail after the candidate encoder was already built.
	good := s.cfg.Model
	s.cfg.Model = ModelName("bogus")
	if err := s.Fit(records, train); err == nil {
		t.Fatal("Fit with a bogus model succeeded")
	}
	s.cfg.Model = good

	if s.Encoder() != encBefore {
		t.Fatal("failed Fit replaced the serving encoder")
	}
	after, err := s.Predict(train)
	if err != nil {
		t.Fatalf("Predict after failed Fit: %v", err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatal("predictions changed after a failed Fit")
	}
}
