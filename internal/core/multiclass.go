package core

import (
	"fmt"
	"sort"

	"github.com/ixp-scrubber/ixpscrubber/internal/features"
	"github.com/ixp-scrubber/ixpscrubber/internal/ml"
	"github.com/ixp-scrubber/ixpscrubber/internal/ml/xgb"
)

// Multiclass tagging-rule prediction — the extension §5.2.2 discusses:
// instead of classifying targets as DDoS and then matching tagging rules as
// filters, predict the applicable tagging rule directly and use it as the
// ACL. The paper notes the trade-off: predicted rules are model output
// rather than raw-data artifacts, so they are less interpretable; this
// implementation exists to quantify that trade-off (see
// BenchmarkAblationMulticlass).

// RulePredictor is a one-vs-rest ensemble over the most supported accepted
// rules plus a "benign" class.
type RulePredictor struct {
	// RuleIDs are the predictable classes, by descending support.
	RuleIDs []string
	models  []*xgb.Model // aligned with RuleIDs
	stages  []ml.Transformer
	fitted  bool
}

// NewRulePredictor builds a predictor over the top-k accepted rules of the
// scrubber (k <= 16 keeps training affordable).
func (s *Scrubber) NewRulePredictor(k int) *RulePredictor {
	if k <= 0 || k > 16 {
		k = 8
	}
	accepted := s.rules.Accepted()
	sort.Slice(accepted, func(i, j int) bool { return accepted[i].Support > accepted[j].Support })
	if len(accepted) > k {
		accepted = accepted[:k]
	}
	rp := &RulePredictor{}
	for _, r := range accepted {
		rp.RuleIDs = append(rp.RuleIDs, r.ID)
	}
	return rp
}

// dominantRule returns the index in ruleIDs of the aggregate's first
// annotated rule that is predictable, or -1 for none.
func dominantRule(ruleIDs []string, agg *features.Aggregate) int {
	for i, id := range ruleIDs {
		for _, have := range agg.RuleIDs {
			if have == id {
				return i
			}
		}
	}
	return -1
}

// Fit trains one binary model per rule class on the encoded aggregates.
func (rp *RulePredictor) Fit(s *Scrubber, train []*features.Aggregate) error {
	if len(rp.RuleIDs) == 0 {
		return fmt.Errorf("core: no predictable rules (mine and accept rules first)")
	}
	if len(train) == 0 {
		return fmt.Errorf("core: empty training set")
	}
	x := make([][]float64, len(train))
	cls := make([]int, len(train))
	for i, a := range train {
		x[i] = features.Encode(s.encoder, a, nil)
		cls[i] = dominantRule(rp.RuleIDs, a)
	}
	rp.stages = []ml.Transformer{&ml.VarianceThreshold{Min: 1e-12}, &ml.Imputer{Value: -1}}
	cur := x
	for _, st := range rp.stages {
		st.Fit(cur, nil)
		cur = st.Transform(cur)
	}
	rp.models = make([]*xgb.Model, len(rp.RuleIDs))
	for c := range rp.RuleIDs {
		y := make([]int, len(cls))
		for i, v := range cls {
			if v == c {
				y[i] = 1
			}
		}
		m := xgb.New(xgb.Options{Estimators: 12, MaxDepth: 5, LearningRate: 0.3, Lambda: 4, Bins: 32, MinChildWeight: 4})
		if err := m.Fit(cur, y); err != nil {
			return fmt.Errorf("core: rule class %s: %w", rp.RuleIDs[c], err)
		}
		rp.models[c] = m
	}
	rp.fitted = true
	return nil
}

// Predict returns, per aggregate, the predicted rule index (into RuleIDs)
// or -1 for benign/no-rule, picking the highest-scoring class above 0.5.
func (rp *RulePredictor) Predict(s *Scrubber, aggs []*features.Aggregate) ([]int, error) {
	if !rp.fitted {
		return nil, fmt.Errorf("core: rule predictor not fitted")
	}
	out := make([]int, len(aggs))
	for i, a := range aggs {
		row := features.Encode(s.encoder, a, nil)
		rows := [][]float64{row}
		for _, st := range rp.stages {
			rows = st.Transform(rows)
		}
		best, bestScore := -1, 0.5
		for c, m := range rp.models {
			if sc := m.Score(rows[0]); sc > bestScore {
				best, bestScore = c, sc
			}
		}
		out[i] = best
	}
	return out, nil
}

// Accuracy scores predictions against the annotated ground truth (the rule
// annotations from Step 1 matching).
func (rp *RulePredictor) Accuracy(aggs []*features.Aggregate, pred []int) float64 {
	if len(aggs) == 0 {
		return 0
	}
	ok := 0
	for i, a := range aggs {
		if pred[i] == dominantRule(rp.RuleIDs, a) {
			ok++
		}
	}
	return float64(ok) / float64(len(aggs))
}
