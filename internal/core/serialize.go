package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"github.com/ixp-scrubber/ixpscrubber/internal/ml"
	"github.com/ixp-scrubber/ixpscrubber/internal/ml/xgb"
	"github.com/ixp-scrubber/ixpscrubber/internal/tagging"
	"github.com/ixp-scrubber/ixpscrubber/internal/woe"
)

// Model bundle serialization: a fitted Scrubber persists as one JSON
// envelope carrying the curated rule set, the WoE encoder (the local
// knowledge), the feature-reduction column selection and the fitted
// classifier. Bundles are what scrubberd persists across restarts and what
// vantage points exchange for geographic transfer (ship the bundle, then
// swap the encoder via WithEncoder to keep knowledge local).
//
// Serialization supports the recommended production model (XGB); for other
// classifiers retrain from the balanced data, which is cheap.

const bundleVersion = 1

type bundleJSON struct {
	Version int             `json:"version"`
	Model   ModelName       `json:"model"`
	Config  Config          `json:"config"`
	Rules   json.RawMessage `json:"rules"`
	Encoder json.RawMessage `json:"encoder"`
	Kept    []int           `json:"kept_columns"`
	XGB     json.RawMessage `json:"xgb"`
}

// Save writes the fitted scrubber as a JSON bundle. Only the XGB model is
// serializable.
func (s *Scrubber) Save(w io.Writer) error {
	if !s.fitted {
		return fmt.Errorf("core: cannot save an unfitted scrubber")
	}
	if s.cfg.Model != ModelXGB || s.pipeline == nil {
		return fmt.Errorf("core: model bundles support XGB only, have %s", s.cfg.Model)
	}
	model, ok := s.pipeline.Model.(*xgb.Model)
	if !ok {
		return fmt.Errorf("core: unexpected model type %T", s.pipeline.Model)
	}
	var rules, encoder, xgbBuf bytes.Buffer
	if err := s.rules.Export(&rules); err != nil {
		return err
	}
	if err := s.encoder.Save(&encoder); err != nil {
		return err
	}
	if err := model.Save(&xgbBuf); err != nil {
		return err
	}
	var kept []int
	if len(s.pipeline.Stages) > 0 {
		if vt, ok := s.pipeline.Stages[0].(*ml.VarianceThreshold); ok {
			kept = vt.Kept()
		}
	}
	out := bundleJSON{
		Version: bundleVersion,
		Model:   s.cfg.Model,
		Config:  s.cfg,
		Rules:   json.RawMessage(rules.Bytes()),
		Encoder: json.RawMessage(encoder.Bytes()),
		Kept:    kept,
		XGB:     json.RawMessage(xgbBuf.Bytes()),
	}
	if err := json.NewEncoder(w).Encode(&out); err != nil {
		return fmt.Errorf("core: saving bundle: %w", err)
	}
	return nil
}

// keptProjector replays a saved feature-reduction column selection.
type keptProjector struct {
	kept []int
}

// Fit is a no-op: the selection was made at save time.
func (k *keptProjector) Fit(x [][]float64, y []int) {}

// Kept returns the replayed column selection (feature-importance mapping).
func (k *keptProjector) Kept() []int { return k.kept }

// Transform projects rows onto the saved columns.
func (k *keptProjector) Transform(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		o := make([]float64, len(k.kept))
		for j, c := range k.kept {
			if c < len(row) {
				o[j] = row[c]
			}
		}
		out[i] = o
	}
	return out
}

// Load reads a bundle saved with Save and returns a ready-to-predict
// Scrubber.
func Load(r io.Reader) (*Scrubber, error) {
	var in bundleJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: loading bundle: %w", err)
	}
	if in.Version != bundleVersion {
		return nil, fmt.Errorf("core: unsupported bundle version %d", in.Version)
	}
	if in.Model != ModelXGB {
		return nil, fmt.Errorf("core: bundle model %s not supported", in.Model)
	}
	s := New(in.Config)
	rules, err := tagging.Import(bytes.NewReader(in.Rules))
	if err != nil {
		return nil, err
	}
	s.SetRules(rules)
	enc, err := woe.Load(bytes.NewReader(in.Encoder))
	if err != nil {
		return nil, err
	}
	enc.Smoothing = in.Config.WoESmoothing
	enc.MinCount = in.Config.WoEMinCount
	s.encoder = enc
	model, err := xgb.Load(bytes.NewReader(in.XGB))
	if err != nil {
		return nil, err
	}
	s.pipeline = &ml.Pipeline{
		Name:   string(in.Model),
		Stages: []ml.Transformer{&keptProjector{kept: in.Kept}, &ml.Imputer{Value: -1}},
		Model:  model,
	}
	s.fitted = true
	return s, nil
}
