package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"github.com/ixp-scrubber/ixpscrubber/internal/ml"
	"github.com/ixp-scrubber/ixpscrubber/internal/ml/xgb"
	"github.com/ixp-scrubber/ixpscrubber/internal/tagging"
	"github.com/ixp-scrubber/ixpscrubber/internal/woe"
)

// Model bundle serialization: a fitted Scrubber persists as one JSON
// envelope carrying the curated rule set, the WoE encoder (the local
// knowledge), the feature-reduction column selection and the fitted
// classifier. Bundles are what scrubberd persists across restarts, what the
// model registry versions, and what vantage points exchange for geographic
// transfer.
//
// Two bundle kinds exist (§6.4, Fig. 12): a full bundle carries everything
// including the WoE encoder; a classifier-only bundle strips the encoder so
// the local knowledge never leaves the vantage point — the importer re-binds
// the trees to its own encoder via WithEncoder.
//
// Serialization supports the recommended production model (XGB); for other
// classifiers retrain from the balanced data, which is cheap.

const bundleVersion = 1

// Bundle kinds.
const (
	// BundleFull is a complete model: rules, WoE encoder, classifier.
	BundleFull = "full"
	// BundleClassifierOnly omits the WoE encoder (it stays local); the
	// loaded scrubber must be bound to an encoder before predicting.
	BundleClassifierOnly = "classifier-only"
)

type bundleJSON struct {
	Version int             `json:"version"`
	Kind    string          `json:"kind,omitempty"` // empty = full (pre-registry bundles)
	Model   ModelName       `json:"model"`
	Config  Config          `json:"config"`
	Rules   json.RawMessage `json:"rules"`
	Encoder json.RawMessage `json:"encoder,omitempty"`
	Kept    []int           `json:"kept_columns"`
	XGB     json.RawMessage `json:"xgb"`
}

// Save writes the fitted scrubber as a full JSON bundle. Only the XGB model
// is serializable.
func (s *Scrubber) Save(w io.Writer) error {
	return s.save(w, BundleFull)
}

// SaveClassifierOnly writes the bundle without the WoE encoder — the
// geographic-transfer export of §6.4 (Fig. 12, right): the trees, rules and
// column selection travel, the local knowledge stays home. Loading the
// result yields a scrubber that refuses to predict until WithEncoder binds
// it to the destination's local encoder.
func (s *Scrubber) SaveClassifierOnly(w io.Writer) error {
	return s.save(w, BundleClassifierOnly)
}

func (s *Scrubber) save(w io.Writer, kind string) error {
	if !s.fitted {
		return fmt.Errorf("core: cannot save an unfitted scrubber")
	}
	if s.cfg.Model != ModelXGB || s.pipeline == nil {
		return fmt.Errorf("core: model bundles support XGB only, have %s", s.cfg.Model)
	}
	model, ok := s.pipeline.Model.(*xgb.Model)
	if !ok {
		return fmt.Errorf("core: unexpected model type %T", s.pipeline.Model)
	}
	var rules, encoder, xgbBuf bytes.Buffer
	if err := s.rules.Export(&rules); err != nil {
		return err
	}
	if kind == BundleFull {
		if err := s.encoder.Save(&encoder); err != nil {
			return err
		}
	}
	if err := model.Save(&xgbBuf); err != nil {
		return err
	}
	// Both the original VarianceThreshold and the keptProjector a loaded
	// bundle carries expose Kept(), so a loaded scrubber re-saves (e.g.
	// registry classifier-only export) without losing its column selection.
	var kept []int
	if len(s.pipeline.Stages) > 0 {
		if k, ok := s.pipeline.Stages[0].(interface{ Kept() []int }); ok {
			kept = k.Kept()
		}
	}
	// Workers is a runtime parallelism knob, not model state: training and
	// inference are bit-exact at any worker count, so baking the count into
	// the bundle would give the same model different content hashes on
	// different machines. Normalize it out; loaders pick their own.
	cfg := s.cfg
	cfg.Workers = 0
	out := bundleJSON{
		Version: bundleVersion,
		Kind:    kind,
		Model:   s.cfg.Model,
		Config:  cfg,
		Rules:   json.RawMessage(rules.Bytes()),
		Kept:    kept,
		XGB:     json.RawMessage(xgbBuf.Bytes()),
	}
	if kind == BundleFull {
		out.Encoder = json.RawMessage(encoder.Bytes())
	}
	if err := json.NewEncoder(w).Encode(&out); err != nil {
		return fmt.Errorf("core: saving bundle: %w", err)
	}
	return nil
}

// BundleInfo is the envelope metadata of a serialized bundle.
type BundleInfo struct {
	Version int
	Kind    string // BundleFull or BundleClassifierOnly
	Model   ModelName
}

// InspectBundle decodes only the bundle envelope — enough for a registry to
// classify a bundle without paying for a full model load.
func InspectBundle(data []byte) (BundleInfo, error) {
	var in struct {
		Version int       `json:"version"`
		Kind    string    `json:"kind"`
		Model   ModelName `json:"model"`
	}
	if err := json.Unmarshal(data, &in); err != nil {
		return BundleInfo{}, fmt.Errorf("core: inspecting bundle: %w", err)
	}
	if in.Version != bundleVersion {
		return BundleInfo{}, fmt.Errorf("core: unsupported bundle version %d", in.Version)
	}
	if in.Kind == "" {
		in.Kind = BundleFull
	}
	if in.Kind != BundleFull && in.Kind != BundleClassifierOnly {
		return BundleInfo{}, fmt.Errorf("core: unknown bundle kind %q", in.Kind)
	}
	return BundleInfo{Version: in.Version, Kind: in.Kind, Model: in.Model}, nil
}

// keptProjector replays a saved feature-reduction column selection.
type keptProjector struct {
	kept []int
}

// Fit is a no-op: the selection was made at save time.
func (k *keptProjector) Fit(x [][]float64, y []int) {}

// Kept returns the replayed column selection (feature-importance mapping).
func (k *keptProjector) Kept() []int { return k.kept }

// Transform projects rows onto the saved columns.
func (k *keptProjector) Transform(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		o := make([]float64, len(k.kept))
		out[i] = o
		k.transformRow(o, row)
	}
	return out
}

// OutCols: the saved selection's width, regardless of input width.
func (k *keptProjector) OutCols(cols int) int { return len(k.kept) }

// TransformInto is the allocation-free Transform, keeping loaded bundles
// on the pipeline's zero-allocation PredictInto path.
func (k *keptProjector) TransformInto(x, out [][]float64) {
	for i, row := range x {
		k.transformRow(out[i], row)
	}
}

func (k *keptProjector) transformRow(o, row []float64) {
	for j, c := range k.kept {
		if c < len(row) {
			o[j] = row[c]
		} else {
			o[j] = 0
		}
	}
}

// Load reads a bundle saved with Save or SaveClassifierOnly and returns a
// Scrubber. A full bundle loads ready to predict; a classifier-only bundle
// loads with no encoder and refuses to predict until WithEncoder binds it
// to a local WoE snapshot.
func Load(r io.Reader) (*Scrubber, error) {
	var in bundleJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: loading bundle: %w", err)
	}
	if in.Version != bundleVersion {
		return nil, fmt.Errorf("core: unsupported bundle version %d", in.Version)
	}
	if in.Model != ModelXGB {
		return nil, fmt.Errorf("core: bundle model %s not supported", in.Model)
	}
	kind := in.Kind
	if kind == "" {
		kind = BundleFull
	}
	if kind != BundleFull && kind != BundleClassifierOnly {
		return nil, fmt.Errorf("core: unknown bundle kind %q", in.Kind)
	}
	s := New(in.Config)
	rules, err := tagging.Import(bytes.NewReader(in.Rules))
	if err != nil {
		return nil, err
	}
	s.SetRules(rules)
	switch kind {
	case BundleFull:
		enc, err := woe.Load(bytes.NewReader(in.Encoder))
		if err != nil {
			return nil, err
		}
		enc.Smoothing = in.Config.WoESmoothing
		enc.MinCount = in.Config.WoEMinCount
		s.encoder = enc
	case BundleClassifierOnly:
		s.needsEncoder = true
	}
	model, err := xgb.Load(bytes.NewReader(in.XGB))
	if err != nil {
		return nil, err
	}
	s.pipeline = &ml.Pipeline{
		Name:   string(in.Model),
		Stages: []ml.Transformer{&keptProjector{kept: in.Kept}, &ml.Imputer{Value: -1}},
		Model:  model,
	}
	s.fitted = true
	return s, nil
}
