// Package core assembles the two-step IXP Scrubber model (§5): Step 1 mines
// and curates tagging rules over balanced flow records; Step 2 aggregates
// flows to per-target-IP profiles, encodes categoricals as Weight of
// Evidence and classifies targets with a supervised model. The package also
// implements the RBC and DUM baselines, local explainability, geographic
// model transfer (full vs classifier-only), and ACL generation.
package core

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/acl"
	"github.com/ixp-scrubber/ixpscrubber/internal/features"
	"github.com/ixp-scrubber/ixpscrubber/internal/ml"
	"github.com/ixp-scrubber/ixpscrubber/internal/ml/bayes"
	"github.com/ixp-scrubber/ixpscrubber/internal/ml/dummy"
	"github.com/ixp-scrubber/ixpscrubber/internal/ml/linear"
	"github.com/ixp-scrubber/ixpscrubber/internal/ml/nn"
	"github.com/ixp-scrubber/ixpscrubber/internal/ml/tree"
	"github.com/ixp-scrubber/ixpscrubber/internal/ml/xgb"
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/par"
	"github.com/ixp-scrubber/ixpscrubber/internal/tagging"
	"github.com/ixp-scrubber/ixpscrubber/internal/woe"
)

// ModelName identifies one of the evaluated classifiers.
type ModelName string

// The model zoo of Tables 3 and 5.
const (
	ModelXGB  ModelName = "XGB"
	ModelNN   ModelName = "NN"
	ModelLSVM ModelName = "LSVM"
	ModelNBG  ModelName = "NB-G"
	ModelDT   ModelName = "DT"
	ModelNBC  ModelName = "NB-C"
	ModelNBM  ModelName = "NB-M"
	ModelNBB  ModelName = "NB-B"
	ModelRBC  ModelName = "RBC" // rule tagging baseline
	ModelDUM  ModelName = "DUM" // random baseline
)

// AllModels lists the models in Table 5 order.
var AllModels = []ModelName{
	ModelXGB, ModelNN, ModelLSVM, ModelNBG, ModelDT,
	ModelNBC, ModelNBM, ModelNBB, ModelRBC, ModelDUM,
}

// Config parameterizes a Scrubber.
type Config struct {
	// Model selects the Step 2 classifier.
	Model ModelName
	// Seed drives every stochastic component.
	Seed uint64
	// Mine configures Step 1 rule mining.
	Mine tagging.MineOptions
	// AutoAccept curates mined rules with the scripted operator policy
	// (tagging.DefaultAcceptPolicy) instead of waiting for human review;
	// the prototype evaluation mode (§6 trains without intervention).
	AutoAccept bool
	// Policy overrides the auto-acceptance policy when AutoAccept is set.
	Policy *tagging.AcceptPolicy
	// XGB optionally overrides the XGBoost hyperparameters.
	XGB *xgb.Options
	// WoESmoothing overrides the WoE pseudocount (default 1, the paper's
	// add-one guard). Larger values stabilize small training corpora.
	WoESmoothing float64
	// WoEMinCount is the evidence floor: categorical values seen fewer
	// times than this encode as neutral, like unknowns. Defaults to 4 —
	// with the paper's data volumes every recurring value clears the floor,
	// so the default matters only for small corpora.
	WoEMinCount int
	// Workers bounds the worker pool used for rule mining, feature
	// encoding, and classifier training/scoring: 0 sizes from GOMAXPROCS,
	// 1 forces the serial path. Outputs are bit-for-bit identical at every
	// value (see internal/par).
	Workers int
	// Sketch enables the bounded-memory sketch aggregation path with the
	// given exactness budget; nil means exact aggregation. See
	// features.SketchConfig for the error-budget semantics.
	Sketch *features.SketchConfig
}

// DefaultConfig returns the recommended production configuration (XGB).
func DefaultConfig() Config {
	return Config{
		Model:       ModelXGB,
		Seed:        1,
		Mine:        tagging.DefaultMineOptions(),
		AutoAccept:  true,
		WoEMinCount: 4,
	}
}

// Scrubber is a two-step IXP Scrubber model instance.
type Scrubber struct {
	cfg      Config
	rules    *tagging.RuleSet
	tagger   *tagging.Tagger
	encoder  *woe.Encoder
	pipeline *ml.Pipeline
	fitted   bool
	metrics  *Metrics
	// needsEncoder marks a classifier-only import (Fig. 12): the trees are
	// fitted but no WoE encoder travelled with them, so Predict refuses to
	// run until WithEncoder binds a local snapshot.
	needsEncoder bool
}

// New creates a Scrubber with an empty rule set.
func New(cfg Config) *Scrubber {
	if cfg.Model == "" {
		cfg.Model = ModelXGB
	}
	return &Scrubber{
		cfg:     cfg,
		rules:   tagging.NewRuleSet(nil),
		tagger:  tagging.NewTagger(nil),
		encoder: woe.NewEncoder(),
	}
}

// Config returns the scrubber's configuration.
func (s *Scrubber) Config() Config { return s.cfg }

// Rules exposes the curated rule set.
func (s *Scrubber) Rules() *tagging.RuleSet { return s.rules }

// Tagger returns the current accepted-rule tagger.
func (s *Scrubber) Tagger() *tagging.Tagger { return s.tagger }

// Encoder exposes the WoE encoder (the local knowledge of this vantage
// point).
func (s *Scrubber) Encoder() *woe.Encoder { return s.encoder }

// MineRules runs Step 1 on balanced flow records, merging fresh rules into
// the rule set. With AutoAccept, staged rules are accepted immediately.
func (s *Scrubber) MineRules(records []netflow.Record) (tagging.MiningReport, error) {
	start := time.Now()
	mine := s.cfg.Mine
	if mine.Workers == 0 {
		mine.Workers = s.cfg.Workers
	}
	rules, rep := tagging.Mine(records, mine)
	s.rules.Merge(rules)
	if s.cfg.AutoAccept {
		policy := tagging.DefaultAcceptPolicy()
		if s.cfg.Policy != nil {
			policy = *s.cfg.Policy
		}
		s.rules.Apply(policy)
	}
	s.tagger = tagging.NewTagger(s.rules.Accepted())
	s.metrics.observeMine(start, rep.RulesMinimized, len(s.rules.Accepted()))
	return rep, nil
}

// SetRules replaces the rule set (e.g. imported from the released JSON
// list) and rebuilds the tagger.
func (s *Scrubber) SetRules(set *tagging.RuleSet) {
	s.rules = set
	s.tagger = tagging.NewTagger(set.Accepted())
}

// Aggregate groups balanced flow records into per-<minute, target>
// aggregates annotated with the scrubber's accepted rules. vectors may be
// nil; when given it must align with records (ground truth for per-vector
// scoring). With cfg.Sketch set the bounded-memory sketch path is used; with
// more than one worker available, ingest runs through the per-core sharded
// parallel path. Both switches preserve emission order, and the parallel
// path is bit-identical to serial.
func (s *Scrubber) Aggregate(records []netflow.Record, vectors []string) []*features.Aggregate {
	var out []*features.Aggregate
	agg := features.NewAggregatorSketch(s.tagger, features.DefaultShards(), s.cfg.Sketch,
		func(a *features.Aggregate) { out = append(out, a) })
	agg.Workers = s.cfg.Workers
	if s.metrics != nil {
		agg.Metrics = s.metrics.featureMetrics()
	}
	if par.Workers(s.cfg.Workers) > 1 {
		p := features.NewParallelAggregator(agg)
		p.AddBatch(records, vectors)
		p.Close()
		return out
	}
	agg.AddBatch(records, vectors)
	agg.Close()
	return out
}

// buildPipeline constructs the Figure 8 preprocessing pipeline for the
// configured model.
func (s *Scrubber) buildPipeline() (*ml.Pipeline, error) {
	fr := &ml.VarianceThreshold{Min: 1e-12}
	im := &ml.Imputer{Value: -1}
	switch s.cfg.Model {
	case ModelXGB:
		opts := xgb.DefaultOptions()
		opts.MaxDepth = 8 // histogram trees saturate well before the paper's 24
		if s.cfg.XGB != nil {
			opts = *s.cfg.XGB
		}
		if opts.Workers == 0 {
			opts.Workers = s.cfg.Workers
		}
		return &ml.Pipeline{Name: string(s.cfg.Model),
			Stages: []ml.Transformer{fr, im},
			Model:  xgb.New(opts)}, nil
	case ModelDT:
		return &ml.Pipeline{Name: string(s.cfg.Model),
			Stages: []ml.Transformer{fr, im},
			Model:  tree.New(tree.DefaultOptions())}, nil
	case ModelLSVM:
		o := linear.DefaultOptions()
		o.C = 1 // standardized WoE features want moderate regularization
		o.Seed = s.cfg.Seed
		return &ml.Pipeline{Name: string(s.cfg.Model),
			Stages: []ml.Transformer{fr, im, &ml.StandardScaler{}},
			Model:  linear.New(o)}, nil
	case ModelNN:
		o := nn.DefaultOptions()
		o.Seed = s.cfg.Seed
		return &ml.Pipeline{Name: string(s.cfg.Model),
			Stages: []ml.Transformer{fr, im, &ml.StandardScaler{}, &ml.PCA{Components: 50}},
			Model:  nn.New(o)}, nil
	case ModelNBG:
		return &ml.Pipeline{Name: string(s.cfg.Model),
			Stages: []ml.Transformer{fr, im, &ml.StandardScaler{}},
			Model:  bayes.New(bayes.DefaultOptions(bayes.Gaussian))}, nil
	case ModelNBM, ModelNBC, ModelNBB:
		kind := bayes.Multinomial
		if s.cfg.Model == ModelNBC {
			kind = bayes.Complement
		} else if s.cfg.Model == ModelNBB {
			kind = bayes.Bernoulli
		}
		return &ml.Pipeline{Name: string(s.cfg.Model),
			Stages: []ml.Transformer{fr, im, &ml.MinMaxNormalizer{}},
			Model:  bayes.New(bayes.DefaultOptions(kind))}, nil
	case ModelDUM:
		return &ml.Pipeline{Name: string(s.cfg.Model), Model: dummy.New(s.cfg.Seed)}, nil
	case ModelRBC:
		return nil, nil // rule-based: no pipeline
	default:
		return nil, fmt.Errorf("core: unknown model %q", s.cfg.Model)
	}
}

// Fit trains Step 2: the WoE encoder observes the balanced training flow
// records at the flow level, then the classifier pipeline fits on the
// encoded per-target aggregates. trainRecords must be the records the
// aggregates were built from (their order is irrelevant for WoE). Rule
// mining (Step 1) must have happened before aggregation for rule
// annotations to exist; Fit itself never looks at them (no leakage).
func (s *Scrubber) Fit(trainRecords []netflow.Record, train []*features.Aggregate) error {
	if len(train) == 0 {
		return fmt.Errorf("core: empty training set")
	}
	start := time.Now()
	defer func() { s.metrics.observeFit(start) }()
	// Fit is transactional: everything is built on locals and installed
	// only after training succeeds. A failed fit leaves the previously
	// fitted encoder/pipeline serving — the degraded mode the daemon relies
	// on when a training window turns out to be garbage.
	enc := woe.NewEncoder()
	enc.Smoothing = s.cfg.WoESmoothing
	enc.MinCount = s.cfg.WoEMinCount
	for i := range trainRecords {
		features.ObserveRecord(enc, &trainRecords[i])
	}
	enc.Fit()

	p, err := s.buildPipeline()
	if err != nil {
		return err
	}
	if p != nil {
		x := s.encodeAllWith(enc, train)
		y := make([]int, len(train))
		for i, a := range train {
			if a.Label {
				y[i] = 1
			}
		}
		if err := p.Fit(x, y); err != nil {
			return fmt.Errorf("core: fitting %s: %w", s.cfg.Model, err)
		}
	}
	s.encoder = enc
	s.pipeline = p // nil for RBC, which needs no fitting
	s.fitted = true
	return nil
}

// encodeAll WoE-encodes a batch of aggregates into one flat backing array:
// row i is the sub-slice [i*NumColumns, (i+1)*NumColumns), so the batch
// costs a single allocation and rows never overlap. Encoding fans out over
// row shards on the worker pool; every slot depends only on its own
// aggregate and the read-only fitted encoder, so output is identical at any
// worker count.
func (s *Scrubber) encodeAll(aggs []*features.Aggregate) [][]float64 {
	return s.encodeAllWith(s.encoder, aggs)
}

// encodeAllWith encodes against an explicit encoder so Fit can train a
// candidate without touching the encoder currently serving predictions.
func (s *Scrubber) encodeAllWith(enc *woe.Encoder, aggs []*features.Aggregate) [][]float64 {
	nc := features.NumColumns
	flat := make([]float64, len(aggs)*nc)
	x := make([][]float64, len(aggs))
	enc.EnsureFitted() // no lazy refits inside the parallel region
	workers := par.Workers(s.cfg.Workers)
	if len(aggs) < 64 {
		workers = 1 // fan-out costs more than encoding a small batch
	}
	par.ForChunks(workers, len(aggs), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] = features.Encode(enc, aggs[i], flat[i*nc:i*nc:(i+1)*nc])
		}
	})
	return x
}

// EncodeFeatures WoE-encodes aggregates against the scrubber's current
// encoder — the serving-path feature matrix. Exposed so shadow scoring and
// drift monitoring can reuse one encoded matrix instead of re-encoding per
// consumer.
func (s *Scrubber) EncodeFeatures(aggs []*features.Aggregate) [][]float64 {
	return s.encodeAll(aggs)
}

// PredictEncoded labels pre-encoded rows produced by EncodeFeatures with a
// compatible encoder. It skips the encode stage entirely, which is what
// keeps shadow scoring under 2× the champion-only cost: the challenger
// shares the champion window's encoded matrix.
func (s *Scrubber) PredictEncoded(x [][]float64) ([]int, error) {
	if !s.fitted {
		return nil, fmt.Errorf("core: model not fitted")
	}
	if s.pipeline == nil {
		return nil, fmt.Errorf("core: PredictEncoded requires a pipeline model, have %s", s.cfg.Model)
	}
	start := time.Now()
	out := s.pipeline.Predict(x)
	s.metrics.observePredict(start, out)
	return out, nil
}

// PredictEncodedInto labels pre-encoded rows into out (len(out) ==
// len(x)) — PredictEncoded without the per-call slice: with a pipeline
// whose stages and model are Into-capable (the xgb default is), the
// serving path allocates nothing once the pipeline scratch has grown to
// the window size. Not safe for concurrent use with itself; see
// ml.Pipeline.PredictInto.
func (s *Scrubber) PredictEncodedInto(x [][]float64, out []int) error {
	if !s.fitted {
		return fmt.Errorf("core: model not fitted")
	}
	if s.pipeline == nil {
		return fmt.Errorf("core: PredictEncoded requires a pipeline model, have %s", s.cfg.Model)
	}
	if len(out) != len(x) {
		return fmt.Errorf("core: PredictEncodedInto needs %d output slots, have %d", len(x), len(out))
	}
	start := time.Now()
	s.pipeline.PredictInto(x, out)
	s.metrics.observePredict(start, out)
	return nil
}

// Predict labels aggregates (1 = DDoS target).
func (s *Scrubber) Predict(aggs []*features.Aggregate) ([]int, error) {
	if !s.fitted {
		return nil, fmt.Errorf("core: model not fitted")
	}
	if s.needsEncoder {
		return nil, fmt.Errorf("core: classifier-only bundle not bound to an encoder; call WithEncoder first")
	}
	start := time.Now()
	out := make([]int, len(aggs))
	if s.pipeline == nil { // RBC
		for i, a := range aggs {
			if len(a.RuleIDs) > 0 {
				out[i] = 1
			}
		}
		s.metrics.observePredict(start, out)
		return out, nil
	}
	out = s.pipeline.Predict(s.encodeAll(aggs))
	s.metrics.observePredict(start, out)
	return out, nil
}

// Evaluate scores the fitted model on test aggregates.
func (s *Scrubber) Evaluate(test []*features.Aggregate) (ml.Confusion, error) {
	pred, err := s.Predict(test)
	if err != nil {
		return ml.Confusion{}, err
	}
	y := make([]int, len(test))
	for i, a := range test {
		if a.Label {
			y[i] = 1
		}
	}
	return ml.Confuse(y, pred), nil
}

// EvaluatePerVector scores the fitted model separately for each ground
// truth vector (the per-vector Fβ columns of Table 3). Benign aggregates
// (vector "") count into every vector's negatives.
func (s *Scrubber) EvaluatePerVector(test []*features.Aggregate) (map[string]ml.Confusion, error) {
	pred, err := s.Predict(test)
	if err != nil {
		return nil, err
	}
	out := make(map[string]ml.Confusion)
	vectors := map[string]struct{}{}
	for _, a := range test {
		if a.Vector != "" && a.Label {
			vectors[a.Vector] = struct{}{}
		}
	}
	for v := range vectors {
		var c ml.Confusion
		for i, a := range test {
			truth := 0
			if a.Label {
				if a.Vector != v {
					continue // positives of other vectors are out of scope
				}
				truth = 1
			}
			switch {
			case truth == 1 && pred[i] == 1:
				c.TP++
			case truth == 1 && pred[i] == 0:
				c.FN++
			case truth == 0 && pred[i] == 1:
				c.FP++
			default:
				c.TN++
			}
		}
		out[v] = c
	}
	return out, nil
}

// WithEncoder returns a shallow transfer of this scrubber that keeps the
// fitted classifier but swaps in another vantage point's WoE encoder — the
// classifier-only geographic transfer of §6.4 (Fig. 12, right).
//
// The transfer assumes both encoders were fitted on comparable data
// volumes: WoE magnitudes grow with the log of a value's observation
// count, so a classifier whose split thresholds were learned against a
// months-long encoder underestimates evidence from an encoder fitted on
// hours of data. The paper's deployments satisfy this (every vantage
// point's encoder spans the full training window).
func (s *Scrubber) WithEncoder(enc *woe.Encoder) *Scrubber {
	t := *s
	t.encoder = enc
	t.needsEncoder = false
	return &t
}

// NeedsEncoder reports whether this scrubber is a classifier-only import
// still waiting for WithEncoder — true exactly for a scrubber loaded from
// a BundleClassifierOnly bundle. Receivers use it to classify an
// already-loaded bundle without re-parsing the envelope.
func (s *Scrubber) NeedsEncoder() bool { return s.needsEncoder }

// GenerateACLs emits per-target drop entries for every accepted rule — the
// deployment output once Step 2 flags targets.
func (s *Scrubber) GenerateACLs(targets []netip.Addr, action acl.Action) []acl.Entry {
	return acl.ForTargets(s.rules.Rules(), targets, action)
}

// TrainFlows is the end-to-end training entry point over a balanced flow
// set: mine Step 1 rules, aggregate with annotations, fit Step 2. vectors
// may be nil (production) or align with records (experiments).
func (s *Scrubber) TrainFlows(records []netflow.Record, vectors []string) error {
	if _, err := s.MineRules(records); err != nil {
		return err
	}
	return s.Fit(records, s.Aggregate(records, vectors))
}

// ImportanceEntry pairs a feature column with its gain importance.
type ImportanceEntry struct {
	Column string
	Gain   float64
}

// FeatureImportance returns the XGB per-column gain importances mapped back
// through the feature-reduction stage to original column names, descending
// (Figure 10). Only available for the XGB model.
func (s *Scrubber) FeatureImportance() ([]ImportanceEntry, error) {
	if s.pipeline == nil || s.cfg.Model != ModelXGB {
		return nil, fmt.Errorf("core: feature importance requires a fitted XGB model")
	}
	model, ok := s.pipeline.Model.(*xgb.Model)
	if !ok {
		return nil, fmt.Errorf("core: unexpected model type")
	}
	gains := model.GainImportance()
	names := features.ColumnNames()
	// Map reduced column indices back through the feature-reduction stage.
	var kept []int
	if len(s.pipeline.Stages) > 0 {
		if k, ok := s.pipeline.Stages[0].(interface{ Kept() []int }); ok {
			kept = k.Kept()
		}
	}
	out := make([]ImportanceEntry, 0, len(gains))
	for i, g := range gains {
		col := i
		if kept != nil && i < len(kept) {
			col = kept[i]
		}
		name := fmt.Sprintf("col%d", col)
		if col < len(names) {
			name = names[col]
		}
		out = append(out, ImportanceEntry{Column: name, Gain: g})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Gain > out[j].Gain })
	return out, nil
}
