package core

import (
	"bytes"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/balance"
	"github.com/ixp-scrubber/ixpscrubber/internal/ml/xgb"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
)

// fuzzBundles trains one small scrubber and renders realistic seeds for the
// mutator to deform: a full bundle, a classifier-only bundle, a pre-registry
// bundle with no kind field, truncations at interesting offsets, and the
// classic garbage inputs. Bundles are what the registry stores and what
// vantage points exchange, so Load is a trust boundary: arbitrary bytes must
// never panic it.
func fuzzBundles(tb testing.TB) [][]byte {
	tb.Helper()
	p := synth.ProfileUS1()
	p.Seed = 4
	g := synth.NewGenerator(p)
	bal, _ := balance.Flows(4, g.Generate(0, 60))
	vectors := make([]string, len(bal))
	for i := range bal {
		vectors[i] = bal[i].Vector
	}
	records := synth.Records(bal)
	// A deliberately tiny forest: seeds only need the full envelope shape,
	// and small inputs keep the mutator's throughput high.
	cfg := DefaultConfig()
	opts := xgb.DefaultOptions()
	opts.Estimators = 4
	opts.MaxDepth = 4
	cfg.XGB = &opts
	s := New(cfg)
	if _, err := s.MineRules(records); err != nil {
		tb.Fatal(err)
	}
	if err := s.Fit(records, s.Aggregate(records, vectors)); err != nil {
		tb.Fatal(err)
	}

	var full, classifier bytes.Buffer
	if err := s.Save(&full); err != nil {
		tb.Fatal(err)
	}
	if err := s.SaveClassifierOnly(&classifier); err != nil {
		tb.Fatal(err)
	}
	seeds := [][]byte{full.Bytes(), classifier.Bytes()}

	// A v0-era bundle: strip the kind field (empty kind must read as full).
	noKind := bytes.Replace(full.Bytes(), []byte(`"kind":"full",`), nil, 1)
	seeds = append(seeds, noKind)

	for _, cut := range []int{1, 16, len(full.Bytes()) / 2, len(full.Bytes()) - 2} {
		if cut < full.Len() {
			seeds = append(seeds, full.Bytes()[:cut])
		}
	}
	seeds = append(seeds,
		[]byte("{"),
		[]byte(`{"version":9}`),
		[]byte(`{"version":1,"model":"dt"}`),
		[]byte(`{"version":1,"kind":"half","model":"xgb"}`),
		[]byte(`null`),
	)
	return seeds
}

// FuzzBundleLoad hammers the bundle deserialization path with mutated
// bundles. Invariants: Load and InspectBundle never panic; when both accept
// an input they agree on its kind; and a bundle that loads and re-saves must
// load again (serialization is closed under round trips).
func FuzzBundleLoad(f *testing.F) {
	for _, s := range fuzzBundles(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		info, infoErr := InspectBundle(data)
		s, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		if !s.fitted {
			t.Fatal("loaded scrubber not marked fitted")
		}
		if infoErr == nil {
			kind := BundleFull
			if s.needsEncoder {
				kind = BundleClassifierOnly
			}
			if info.Kind != kind {
				t.Fatalf("InspectBundle kind %q, loaded scrubber is %q", info.Kind, kind)
			}
		}
		// Re-save can refuse (a mutated Config can disagree with the
		// envelope), but what it does emit must load.
		var buf bytes.Buffer
		if s.needsEncoder {
			err = s.SaveClassifierOnly(&buf)
		} else {
			err = s.Save(&buf)
		}
		if err != nil {
			return
		}
		if _, err := Load(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("re-saved bundle does not load: %v", err)
		}
	})
}
