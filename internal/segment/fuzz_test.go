package segment

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzConfigLoad: the loader must never panic, must reject garbage and
// unknown segments, and every rejection must carry a file:line position.
// Accepted configs must revalidate cleanly and render a graph. Seeded with
// every shipped example config plus the parser's edge cases.
func FuzzConfigLoad(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "pipelines", "*.yml"))
	if err != nil || len(paths) == 0 {
		f.Fatalf("no example configs to seed from (%v)", err)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	for _, s := range []string{
		"",
		"pipeline:",
		"pipeline: [a, b]",
		"pipeline:\n\t- segment: sflow",
		"---\npipeline:\n  - segment: sflow",
		"pipeline:\n  - segment: warp",
		"pipeline:\n  - segment: &x sflow",
		"pipeline:\n  - segment: |\n      sflow",
		"pipeline:\n  - segment: sflow\n    config:\n      batch: 99999999999999999999",
		"pipeline:\n  - segment: sflow\n    config:\n      listen: \"unterminated",
		"pipeline:\n  - segment: sflow\n    config:\n      flush: -5ms",
		"pipeline:\n  - segment: tee\n    branches:\n      a:\n        - segment: tee",
		"pipeline:\n- segment: sflow\n- segment: scrubber\n  config:\n    drop-policy: 'block'",
		"pipeline:\n  -\n    segment: sflow\n  - segment: metrics",
		"a: 1\nb:\n  c: {d: e}\n",
		"pipeline:\n  - segment: sflow\n  - segment: sflow:\n",
		strings.Repeat("pipeline:\n", 3),
		"pipeline:\n  - segment: \"sflow\"\n  - segment: metrics\n    config:\n      name: 'it''s'",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		cfg, err := LoadConfig("fuzz.yml", []byte(src))
		if err != nil {
			if !strings.HasPrefix(err.Error(), "fuzz.yml:") {
				t.Fatalf("rejection without a file:line position: %q", err)
			}
			return
		}
		// Accepted config: structurally valid, idempotently revalidatable,
		// and renderable.
		if err := cfg.Validate(); err != nil {
			t.Fatalf("accepted config fails revalidation: %v", err)
		}
		if g := cfg.Graph(); !strings.HasPrefix(g, "pipeline fuzz.yml") {
			t.Fatalf("graph header missing: %q", g)
		}
		if specs[cfg.Pipeline[0].Kind].Group != GroupInput {
			t.Fatalf("accepted pipeline starts with non-input %q", cfg.Pipeline[0].Kind)
		}
	})
}
