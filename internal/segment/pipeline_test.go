package segment

import (
	"context"
	"net"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/chaos"
	"github.com/ixp-scrubber/ixpscrubber/internal/ixpsim"
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/obs"
	"github.com/ixp-scrubber/ixpscrubber/internal/packet"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
)

// segStart anchors simulated time (2021-01-01 UTC in unix minutes).
const segStart = int64(26_830_080)

// segProfile is a small vantage point with blackholed episodes every run,
// sized so a full pipeline test stays well under a second.
func segProfile() synth.Profile {
	p := synth.ProfileUS2()
	p.Name = "IXP-SEGMENT"
	p.Seed = 0xBEEF
	p.BenignFlowsPerMin = 96
	p.TargetIPs = 48
	p.BenignSrcIPs = 192
	p.EpisodeRatePerMin = 0.3
	p.EpisodeDurMeanMin = 6
	p.AttackFlowsPerMin = 24
	return p
}

// chaosListen hands out in-memory packet conns, so pipeline tests never
// bind real sockets.
func chaosListen(string, string) (net.PacketConn, error) {
	return chaos.NewPacketConn(), nil
}

// feedMinutes streams the profile's traffic minute by minute into emit (one
// batch per minute) and returns the total record count. Deterministic for a
// fixed profile seed, so two pipelines fed this way see identical streams.
func feedMinutes(prof synth.Profile, minutes int64, emit func([]netflow.Record)) uint64 {
	gen := synth.NewGenerator(prof)
	var buf []synth.Flow
	var total uint64
	for m := int64(0); m < minutes; m++ {
		buf = gen.GenerateMinute(segStart+m, buf[:0])
		recs := synth.Records(buf)
		total += uint64(len(recs))
		emit(recs)
	}
	return total
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConfigEquivalentToHardwired pins the tentpole guarantee: the default
// YAML config assembles a pipeline bit-identical to the pre-PR hardwired
// daemon chain — same training round, same ACL bytes, same conservation
// counters — for the same input stream.
func TestConfigEquivalentToHardwired(t *testing.T) {
	const minutes = 10
	now := (segStart + minutes + 1) * 60
	clk := func() int64 { return now }
	ctx := context.Background()

	// Reference: the exact chain cmd/scrubberd wires from flags (see
	// run()): NewPipeline, RestoreCheckpoint, Start, EmitBatch from the
	// collector, TrainRound from the ticker.
	hwDir := t.TempDir()
	hw := ixpsim.NewPipeline(ixpsim.PipelineConfig{
		Window:          24 * time.Hour,
		QueueCap:        64,
		DropPolicy:      netflow.DropNewest,
		MinTrainRecords: 100,
		ACLPath:         filepath.Join(hwDir, "acls.txt"),
		CheckpointPath:  filepath.Join(hwDir, "scrubber.ckpt"),
		Clock:           clk,
	})
	if _, err := hw.RestoreCheckpoint(); err != nil {
		t.Fatal(err)
	}
	hw.Start(ctx)
	hwTotal := feedMinutes(segProfile(), minutes, hw.EmitBatch)
	waitFor(t, "hardwired drain", func() bool { return hw.Ingested() == hwTotal })
	hwRound, err := hw.TrainRound(ctx, now)
	if err != nil {
		t.Fatal(err)
	}
	hw.Stop()
	if hwRound.Skipped {
		t.Fatal("reference round skipped; profile too small to compare anything")
	}

	// Config-assembled side: the shipped default config, with its file
	// outputs pointed into the test dir.
	segDir := t.TempDir()
	data, err := os.ReadFile(filepath.Join("..", "..", "examples", "pipelines", "default-scrubber.yml"))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig("default-scrubber.yml", data)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Pipeline[1].Params["acl"] = filepath.Join(segDir, "acls.txt")
	cfg.Pipeline[1].Params["checkpoint"] = filepath.Join(segDir, "scrubber.ckpt")
	p, err := New(Env{Clock: clk, ListenPacket: chaosListen}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(ctx); err != nil {
		t.Fatal(err)
	}
	sp := p.Scrubber()
	if sp == nil {
		t.Fatal("no scrubber in default config")
	}
	segTotal := feedMinutes(segProfile(), minutes, p.Feed)
	if segTotal != hwTotal {
		t.Fatalf("input streams diverge: %d vs %d records", segTotal, hwTotal)
	}
	waitFor(t, "segment drain", func() bool { return sp.Ingested() == segTotal })
	segRound, err := sp.TrainRound(ctx, now)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Bit-exact round: verdicts, ACL text, rule count, model sequence.
	if !reflect.DeepEqual(hwRound, segRound) {
		t.Errorf("rounds diverge:\nhardwired: %+v\nsegment:   %+v", hwRound, segRound)
	}
	hwACL, err := os.ReadFile(filepath.Join(hwDir, "acls.txt"))
	if err != nil {
		t.Fatal(err)
	}
	segACL, err := os.ReadFile(filepath.Join(segDir, "acls.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(hwACL) != string(segACL) {
		t.Errorf("published ACL files diverge:\nhardwired:\n%s\nsegment:\n%s", hwACL, segACL)
	}

	// Conservation counters: ingest queue and balancer.
	hq, sq := hw.QueueStats(), sp.QueueStats()
	for _, c := range []struct {
		name   string
		hw, sg uint64
	}{
		{"queue records in", hq.RecordsIn.Load(), sq.RecordsIn.Load()},
		{"queue records out", hq.RecordsOut.Load(), sq.RecordsOut.Load()},
		{"queue dropped records", hq.DroppedRecords.Load(), sq.DroppedRecords.Load()},
		{"ingested", hw.Ingested(), sp.Ingested()},
	} {
		if c.hw != c.sg {
			t.Errorf("%s diverges: hardwired %d, segment %d", c.name, c.hw, c.sg)
		}
	}
	if hb, sb := hw.BalanceStats(), sp.BalanceStats(); hb != sb {
		t.Errorf("balance stats diverge: hardwired %+v, segment %+v", hb, sb)
	}
}

// writePcap renders the profile's flows as Ethernet frames into a pcap
// file and returns the frame count plus the set of blackholed targets.
func writePcap(t *testing.T, path string, prof synth.Profile, minutes int64) (int, map[string]bool) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := packet.NewPcapWriter(f)
	var b packet.Builder
	bh := map[string]bool{}
	gen := synth.NewGenerator(prof)
	var buf []synth.Flow
	frames := 0
	for m := int64(0); m < minutes; m++ {
		buf = gen.GenerateMinute(segStart+m, buf[:0])
		for i := range buf {
			fl := &buf[i]
			frame, err := synth.FrameFor(fl, &b)
			if err != nil {
				t.Fatal(err)
			}
			orig := int(fl.Bytes / fl.Packets)
			if err := w.WriteFrame(fl.Timestamp, 0, frame, orig); err != nil {
				t.Fatal(err)
			}
			frames++
			if fl.Blackholed {
				bh[fl.DstIP.String()] = true
			}
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return frames, bh
}

// TestReplayDualSinkConservation runs the shipped dual-sink example end to
// end: a pcap replay fans out through a tee into the scrubber and a JSONL
// archive, and every record is accounted for — ingested equals per-sink
// delivered plus counted drops on each branch.
func TestReplayDualSinkConservation(t *testing.T) {
	dir := t.TempDir()
	pcapPath := filepath.Join(dir, "capture.pcap")
	frames, bhSet := writePcap(t, pcapPath, segProfile(), 10)
	if len(bhSet) == 0 {
		t.Fatal("profile generated no blackholed flows")
	}

	data, err := os.ReadFile(filepath.Join("..", "..", "examples", "pipelines", "dual-sink.yml"))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig("dual-sink.yml", data)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Pipeline[0].Params["path"] = pcapPath
	for bi := range cfg.Pipeline[1].Branches {
		br := &cfg.Pipeline[1].Branches[bi]
		for i := range br.Pipeline {
			switch br.Pipeline[i].Kind {
			case "scrubber":
				br.Pipeline[i].Params["acl"] = filepath.Join(dir, "acls.txt")
			case "jsonl":
				br.Pipeline[i].Params["path"] = filepath.Join(dir, "archive.jsonl")
			}
		}
	}

	env := Env{
		Label: func(ip netip.Addr, _ int64) bool { return bhSet[ip.String()] },
	}
	p, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := p.Start(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case <-p.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("replay never finished")
	}
	// A round against the replayed window exercises the detect branch all
	// the way to the ACL file, on virtual time.
	now := (segStart + 11) * 60
	waitForScrubber := p.Scrubber()
	if waitForScrubber == nil {
		t.Fatal("dual-sink config has no scrubber")
	}
	if err := p.Close(); err != nil { // drains tee queues and scrubber ingest
		t.Fatal(err)
	}
	round, err := waitForScrubber.TrainRound(ctx, now)
	if err != nil {
		t.Fatal(err)
	}
	if round.Skipped {
		t.Fatal("replayed traffic did not reach the training threshold")
	}
	if _, err := os.Stat(filepath.Join(dir, "acls.txt")); err != nil {
		t.Fatalf("detect branch published no ACL file: %v", err)
	}

	// Conservation ledger.
	replay := p.Instances()[0].(*replaySegment)
	tee := p.Instances()[1].(*teeSegment)
	emitted := replay.Emitted()
	if emitted != uint64(frames) {
		t.Fatalf("replay emitted %d records from %d frames (all frames must decode)", emitted, frames)
	}
	for _, branch := range []string{"detect", "archive"} {
		st := tee.BranchStats(branch)
		if st == nil {
			t.Fatalf("branch %q missing", branch)
		}
		in, out, dropped := st.RecordsIn.Load(), st.RecordsOut.Load(), st.DroppedRecords.Load()
		if in != emitted {
			t.Errorf("branch %q saw %d records, replay emitted %d", branch, in, emitted)
		}
		if in != out+dropped {
			t.Errorf("branch %q leaks records: in=%d out=%d dropped=%d", branch, in, out, dropped)
		}
	}

	// Archive branch: every record handed to the branch reached both sinks.
	archOut := tee.BranchStats("archive").RecordsOut.Load()
	jl := tee.BranchInstances("archive")[0].(*archiveSegment)
	ms := tee.BranchInstances("archive")[1].(*metricsSegment)
	if jl.Delivered() != archOut || jl.WriteErrors() != 0 {
		t.Errorf("jsonl delivered %d of %d (errors %d)", jl.Delivered(), archOut, jl.WriteErrors())
	}
	if ms.Delivered() != archOut {
		t.Errorf("metrics sink counted %d of %d", ms.Delivered(), archOut)
	}
	archive, err := os.ReadFile(filepath.Join(dir, "archive.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(archive), "\n"); uint64(lines) != jl.Delivered() {
		t.Errorf("archive holds %d lines, sink delivered %d", lines, jl.Delivered())
	}

	// Detect branch: tee output flows through the scrubber's own bounded
	// queue; ingested equals delivered there too once drained.
	detOut := tee.BranchStats("detect").RecordsOut.Load()
	sq := waitForScrubber.QueueStats()
	if sq.RecordsIn.Load() != detOut {
		t.Errorf("scrubber queue saw %d records, detect branch delivered %d", sq.RecordsIn.Load(), detOut)
	}
	if got, want := waitForScrubber.Ingested()+sq.DroppedRecords.Load(), detOut; got != want {
		t.Errorf("detect branch leaks records: ingested+dropped=%d, delivered=%d", got, want)
	}
}

// TestDiskbufferCrashRestart: a mid-stream diskbuffer journals every batch;
// after a simulated crash the next run replays the spill downstream before
// live traffic, and conservation holds across the incarnations.
func TestDiskbufferCrashRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := &Config{Name: "wal", Pipeline: []SegmentConfig{
		{Kind: "sflow"},
		{Kind: "diskbuffer", Params: map[string]any{"dir": dir}},
		{Kind: "metrics"},
	}}
	env := Env{ListenPacket: chaosListen}
	ctx := context.Background()

	// Run 1: feed, then crash without a clean Close.
	p1, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.Start(ctx); err != nil {
		t.Fatal(err)
	}
	fed := feedMinutes(segProfile(), 4, p1.Feed)
	db1 := p1.Instances()[1].(*diskbufferSegment)
	sink1 := p1.Instances()[2].(*metricsSegment)
	if db1.Journaled() != fed {
		t.Fatalf("run 1 journaled %d of %d records", db1.Journaled(), fed)
	}
	if sink1.Delivered() != fed {
		t.Fatalf("run 1 delivered %d of %d records (journal must not eat the stream)", sink1.Delivered(), fed)
	}
	db1.crashForTest()
	_ = p1.Close() // the crashed diskbuffer leaves its spill behind

	spills, _ := filepath.Glob(filepath.Join(dir, "spill-*.wal"))
	if len(spills) != 1 {
		t.Fatalf("crash left %d spill files, want 1", len(spills))
	}

	// Run 2: restart over the same dir; the spill replays downstream
	// before new traffic, then a clean Close removes the new journal.
	p2, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Start(ctx); err != nil {
		t.Fatal(err)
	}
	db2 := p2.Instances()[1].(*diskbufferSegment)
	sink2 := p2.Instances()[2].(*metricsSegment)
	if db2.Replayed() != fed {
		t.Fatalf("restart replayed %d of %d spilled records", db2.Replayed(), fed)
	}
	if sink2.Delivered() != fed {
		t.Fatalf("replayed records did not reach the sink: %d of %d", sink2.Delivered(), fed)
	}
	fed2 := feedMinutes(segProfile(), 2, p2.Feed)
	if sink2.Delivered() != fed+fed2 {
		t.Fatalf("run 2 delivered %d, want %d replayed + %d live", sink2.Delivered(), fed, fed2)
	}
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}
	if left, _ := filepath.Glob(filepath.Join(dir, "spill-*.wal")); len(left) != 0 {
		t.Fatalf("clean shutdown left spill files behind: %v", left)
	}
}

// TestDiskbufferHeadReplay: at the head of a pipeline the diskbuffer is a
// finite replay-only input — it drains a crashed run's spill and closes
// Done.
func TestDiskbufferHeadReplay(t *testing.T) {
	dir := t.TempDir()
	// A leftover spill, as a crashed run would leave it.
	f, err := os.Create(filepath.Join(dir, "spill-0001.wal"))
	if err != nil {
		t.Fatal(err)
	}
	w := netflow.NewWriter(f)
	var written uint64
	feedMinutes(segProfile(), 2, func(recs []netflow.Record) {
		for i := range recs {
			if err := w.Write(&recs[i]); err != nil {
				t.Fatal(err)
			}
			written++
		}
	})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := &Config{Name: "drain", Pipeline: []SegmentConfig{
		{Kind: "diskbuffer", Params: map[string]any{"dir": dir}},
		{Kind: "metrics"},
	}}
	p, err := New(Env{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-p.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("head diskbuffer never finished replaying")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	db := p.Instances()[0].(*diskbufferSegment)
	sink := p.Instances()[1].(*metricsSegment)
	if db.Replayed() != written || sink.Delivered() != written {
		t.Fatalf("replayed %d, delivered %d, want %d", db.Replayed(), sink.Delivered(), written)
	}
	if left, _ := filepath.Glob(filepath.Join(dir, "spill-*.wal")); len(left) != 0 {
		t.Fatalf("replayed spill not removed: %v", left)
	}
}

// TestSampleCSVChain composes filters and archives through Feed: a 1-in-2
// sample halves the stream before the CSV tap, and the tap forwards what it
// writes to the terminal metrics sink.
func TestSampleCSVChain(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "flows.csv")
	cfg := &Config{Name: "csvchain", Pipeline: []SegmentConfig{
		{Kind: "sflow"},
		{Kind: "sample", Params: map[string]any{"every": 2}},
		{Kind: "csv", Params: map[string]any{"path": csvPath}},
		{Kind: "metrics"},
	}}
	p, err := New(Env{ListenPacket: chaosListen}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	fed := feedMinutes(segProfile(), 2, p.Feed)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	want := fed / 2
	csvSeg := p.Instances()[2].(*archiveSegment)
	sink := p.Instances()[3].(*metricsSegment)
	if csvSeg.Delivered() != want || sink.Delivered() != want {
		t.Fatalf("csv wrote %d, sink saw %d, want %d of %d fed", csvSeg.Delivered(), sink.Delivered(), want, fed)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if uint64(lines) != want+1 { // +1 header
		t.Fatalf("csv holds %d lines, want %d rows + header", lines, want)
	}
	if !strings.HasPrefix(string(data), csvHeader) {
		t.Fatalf("csv missing header, starts with %q", string(data)[:40])
	}
}

// TestSegmentPanicIsolation: a panicking segment loses that one batch and
// keeps the pipeline alive, with the panic counted per segment.
func TestSegmentPanicIsolation(t *testing.T) {
	reg := obs.NewRegistry()
	env := Env{Metrics: reg}
	b := &builder{env: &env, cfg: &Config{Name: "t"}}
	b.pm = newPipelineMetrics(reg)
	boom := &panicOnce{}
	bs := &builtSegment{kind: "boom", label: "1:boom", inst: boom}
	enter := instrument(b, bs)

	recs := make([]netflow.Record, 3)
	enter(recs) // must not propagate the panic
	enter(recs)
	if boom.batches != 1 {
		t.Fatalf("segment saw %d batches after the panic, want 1", boom.batches)
	}
	if got := b.pm.panics.With("1:boom").Value(); got != 1 {
		t.Fatalf("panic counter = %d, want 1", got)
	}
	if got := b.pm.batches.With("1:boom").Value(); got != 2 {
		t.Fatalf("batch counter = %d, want 2", got)
	}
	if got := b.pm.records.With("1:boom").Value(); got != 6 {
		t.Fatalf("record counter = %d, want 6", got)
	}
}

type panicOnce struct {
	panicked bool
	batches  int
}

func (s *panicOnce) EmitBatch([]netflow.Record) {
	if !s.panicked {
		s.panicked = true
		panic("segment blew up")
	}
	s.batches++
}
func (s *panicOnce) Start(context.Context) error { return nil }
func (s *panicOnce) Close() error                { return nil }
