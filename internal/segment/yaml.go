// Package segment assembles the scrubber's processing stages into
// config-driven pipelines: a pipeline is an ordered list of segments
// (input / filter / modify / output groups) connected by the same batched
// EmitBatch handoff the hardwired daemon chain uses, loaded from a YAML
// config or constructed programmatically. Modeled on the BelWue
// flowpipeline segment model; see DESIGN.md §16.
package segment

import (
	"fmt"
	"strings"
)

// The config loader parses a deliberately small YAML subset — block
// mappings, block sequences, and scalars — with strict errors that carry
// file:line positions. No external YAML dependency exists in this tree,
// and pipeline configs need nothing more: anchors, flow syntax ({a: b},
// [x, y]), multi-document streams and block scalars are rejected rather
// than half-supported.

type nodeKind int

const (
	scalarNode nodeKind = iota
	mapNode
	seqNode
)

// node is one parsed YAML value, annotated with its source line so schema
// errors downstream stay actionable.
type node struct {
	kind nodeKind
	line int

	// scalar
	value  string
	quoted bool

	// mapping (insertion-ordered)
	keys    []string
	vals    map[string]*node
	keyLine map[string]int

	// sequence
	items []*node
}

// posError is a config error bound to a source position. Every error the
// loader and validator produce wraps one, so "file.yml:12: ..." is the
// uniform shape callers (and the fuzz harness) can rely on.
type posError struct {
	file string
	line int
	msg  string
}

func (e *posError) Error() string {
	if e.line > 0 {
		return fmt.Sprintf("%s:%d: %s", e.file, e.line, e.msg)
	}
	return fmt.Sprintf("%s: %s", e.file, e.msg)
}

func errAt(file string, line int, format string, args ...any) error {
	return &posError{file: file, line: line, msg: fmt.Sprintf(format, args...)}
}

// srcLine is one significant (non-blank, non-comment) input line.
type srcLine struct {
	indent int    // leading spaces
	text   string // comment-stripped, right-trimmed content after the indent
	num    int    // 1-based source line number
}

type yamlParser struct {
	file  string
	lines []srcLine
	pos   int
}

// parseYAML parses data into a node tree. The root must be a mapping.
func parseYAML(file string, data []byte) (*node, error) {
	p := &yamlParser{file: file}
	if err := p.split(data); err != nil {
		return nil, err
	}
	if len(p.lines) == 0 {
		return nil, errAt(file, 1, "empty config")
	}
	if p.lines[0].indent != 0 {
		return nil, errAt(file, p.lines[0].num, "top-level content must not be indented")
	}
	root, err := p.parseBlock(0)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		return nil, errAt(file, p.lines[p.pos].num, "unexpected indentation")
	}
	if root.kind != mapNode {
		return nil, errAt(file, root.line, "top level must be a mapping (expected a \"pipeline:\" key)")
	}
	return root, nil
}

// split breaks data into significant lines, stripping comments (respecting
// quotes) and rejecting tabs in indentation and unsupported constructs.
func (p *yamlParser) split(data []byte) error {
	for i, raw := range strings.Split(string(data), "\n") {
		num := i + 1
		line := strings.TrimSuffix(raw, "\r")
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		if indent < len(line) && line[indent] == '\t' {
			return errAt(p.file, num, "tab in indentation (use spaces)")
		}
		body, err := stripComment(line[indent:])
		if err != nil {
			return errAt(p.file, num, "%s", err)
		}
		body = strings.TrimRight(body, " \t")
		if body == "" {
			continue
		}
		if body == "---" || body == "..." {
			return errAt(p.file, num, "multi-document YAML is not supported")
		}
		p.lines = append(p.lines, srcLine{indent: indent, text: body, num: num})
	}
	return nil
}

// stripComment removes a trailing "#" comment that is outside quotes and
// preceded by whitespace (or starts the line), per YAML rules.
func stripComment(s string) (string, error) {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				if quote == '\'' && i+1 < len(s) && s[i+1] == '\'' {
					i++ // '' escape inside single quotes
					continue
				}
				quote = 0
			} else if quote == '"' && c == '\\' {
				i++ // skip escaped char
			}
		case c == '"' || c == '\'':
			quote = c
		case c == '#' && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t'):
			return s[:i], nil
		}
	}
	if quote != 0 {
		return "", fmt.Errorf("unterminated %c-quoted string", quote)
	}
	return s, nil
}

// parseBlock parses the node starting at the current position, whose first
// line must be indented at least minIndent. It consumes every line of the
// block (all lines at the first line's indent or deeper, subject to
// structure).
func (p *yamlParser) parseBlock(minIndent int) (*node, error) {
	ln := p.lines[p.pos]
	if ln.indent < minIndent {
		return nil, errAt(p.file, ln.num, "expected indentation of at least %d spaces", minIndent)
	}
	if ln.text == "-" || strings.HasPrefix(ln.text, "- ") {
		return p.parseSeq(ln.indent)
	}
	return p.parseMap(ln.indent)
}

func (p *yamlParser) parseSeq(indent int) (*node, error) {
	n := &node{kind: seqNode, line: p.lines[p.pos].num}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent != indent || !(ln.text == "-" || strings.HasPrefix(ln.text, "- ")) {
			if ln.indent > indent {
				return nil, errAt(p.file, ln.num, "unexpected indentation inside sequence")
			}
			break
		}
		if ln.text == "-" {
			// Item body on the following, deeper-indented lines.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, errAt(p.file, ln.num, "empty sequence item")
			}
			item, err := p.parseBlock(indent + 1)
			if err != nil {
				return nil, err
			}
			n.items = append(n.items, item)
			continue
		}
		// Inline item: rewrite "- content" as "  content" and reparse, so
		// "- segment: sflow" plus deeper lines forms one mapping.
		content := strings.TrimLeft(ln.text[2:], " ")
		if content == "" {
			return nil, errAt(p.file, ln.num, "empty sequence item")
		}
		offset := indent + (len(ln.text) - len(content))
		p.lines[p.pos] = srcLine{indent: offset, text: content, num: ln.num}
		item, err := p.parseBlock(indent + 1)
		if err != nil {
			return nil, err
		}
		n.items = append(n.items, item)
	}
	return n, nil
}

func (p *yamlParser) parseMap(indent int) (*node, error) {
	n := &node{
		kind:    mapNode,
		line:    p.lines[p.pos].num,
		vals:    map[string]*node{},
		keyLine: map[string]int{},
	}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent != indent {
			if ln.indent > indent {
				return nil, errAt(p.file, ln.num, "unexpected indentation")
			}
			break
		}
		if ln.text == "-" || strings.HasPrefix(ln.text, "- ") {
			return nil, errAt(p.file, ln.num, "unexpected sequence item inside mapping")
		}
		key, rest, err := splitKey(ln.text)
		if err != nil {
			return nil, errAt(p.file, ln.num, "%s", err)
		}
		if _, dup := n.vals[key]; dup {
			return nil, errAt(p.file, ln.num, "duplicate key %q (first defined at line %d)", key, n.keyLine[key])
		}
		p.pos++
		var child *node
		switch {
		case rest != "":
			child, err = parseScalar(p.file, ln.num, rest)
			if err != nil {
				return nil, err
			}
		case p.pos < len(p.lines) && p.lines[p.pos].indent > indent:
			child, err = p.parseBlock(indent + 1)
			if err != nil {
				return nil, err
			}
		case p.pos < len(p.lines) && p.lines[p.pos].indent == indent &&
			(p.lines[p.pos].text == "-" || strings.HasPrefix(p.lines[p.pos].text, "- ")):
			// A sequence is commonly written at its parent key's indent.
			child, err = p.parseSeq(indent)
			if err != nil {
				return nil, err
			}
		default:
			child = &node{kind: scalarNode, line: ln.num, value: ""}
		}
		n.keys = append(n.keys, key)
		n.vals[key] = child
		n.keyLine[key] = ln.num
	}
	return n, nil
}

// splitKey splits "key: value" (or "key:") into key and the raw value text.
func splitKey(text string) (key, rest string, err error) {
	idx := -1
	for i := 0; i < len(text); i++ {
		if text[i] == ':' && (i+1 == len(text) || text[i+1] == ' ') {
			idx = i
			break
		}
	}
	if idx < 0 {
		return "", "", fmt.Errorf("expected \"key: value\", got %q", text)
	}
	key = strings.TrimSpace(text[:idx])
	if key == "" {
		return "", "", fmt.Errorf("empty mapping key")
	}
	for _, r := range key {
		if !(r == '-' || r == '_' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
			return "", "", fmt.Errorf("invalid mapping key %q (plain keys only: letters, digits, '-', '_', '.')", key)
		}
	}
	return key, strings.TrimSpace(text[idx+1:]), nil
}

// parseScalar interprets one raw scalar value: double- or single-quoted
// strings with their escapes, or a plain scalar. Flow/anchor/block-scalar
// syntax is rejected explicitly.
func parseScalar(file string, line int, raw string) (*node, error) {
	switch raw[0] {
	case '"':
		v, err := unquoteDouble(raw)
		if err != nil {
			return nil, errAt(file, line, "%s", err)
		}
		return &node{kind: scalarNode, line: line, value: v, quoted: true}, nil
	case '\'':
		v, err := unquoteSingle(raw)
		if err != nil {
			return nil, errAt(file, line, "%s", err)
		}
		return &node{kind: scalarNode, line: line, value: v, quoted: true}, nil
	case '{', '[':
		return nil, errAt(file, line, "flow syntax %q is not supported (use block style)", raw)
	case '&', '*':
		return nil, errAt(file, line, "YAML anchors and aliases are not supported")
	case '|', '>':
		return nil, errAt(file, line, "block scalars are not supported")
	case '%', '@', '`':
		return nil, errAt(file, line, "invalid scalar start %q", string(raw[0]))
	}
	return &node{kind: scalarNode, line: line, value: raw}, nil
}

func unquoteDouble(raw string) (string, error) {
	if len(raw) < 2 || raw[len(raw)-1] != '"' {
		return "", fmt.Errorf("unterminated double-quoted string")
	}
	body := raw[1 : len(raw)-1]
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			if c == '"' {
				return "", fmt.Errorf("trailing characters after closing quote")
			}
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", fmt.Errorf("unterminated escape in double-quoted string")
		}
		switch body[i] {
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case '0':
			b.WriteByte(0)
		default:
			return "", fmt.Errorf("unsupported escape \\%c in double-quoted string", body[i])
		}
	}
	return b.String(), nil
}

func unquoteSingle(raw string) (string, error) {
	if len(raw) < 2 || raw[len(raw)-1] != '\'' {
		return "", fmt.Errorf("unterminated single-quoted string")
	}
	body := raw[1 : len(raw)-1]
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		if body[i] == '\'' {
			if i+1 < len(body) && body[i+1] == '\'' {
				b.WriteByte('\'')
				i++
				continue
			}
			return "", fmt.Errorf("trailing characters after closing quote")
		}
		b.WriteByte(body[i])
	}
	return b.String(), nil
}
