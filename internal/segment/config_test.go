package segment

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestLoadConfigDefault(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "examples", "pipelines", "default-scrubber.yml"))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig("default-scrubber.yml", data)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Pipeline) != 2 {
		t.Fatalf("got %d segments, want 2", len(cfg.Pipeline))
	}
	sf := &cfg.Pipeline[0]
	if sf.Kind != "sflow" || sf.Str("listen") != ":6343" || sf.Int("batch") != 256 || sf.Dur("flush") != 50*time.Millisecond {
		t.Fatalf("sflow params wrong: %+v", sf.resolved)
	}
	sc := &cfg.Pipeline[1]
	if sc.Kind != "scrubber" || sc.Dur("window") != 24*time.Hour || sc.Str("drop-policy") != "drop-newest" {
		t.Fatalf("scrubber params wrong: %+v", sc.resolved)
	}
	// Defaults fill unset fields.
	if sc.Bool("shadow") || sc.Str("registry") != "" || sc.Int("seed") != 0 {
		t.Fatalf("scrubber defaults wrong: %+v", sc.resolved)
	}
}

func TestLoadConfigAllExamplesValidate(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "pipelines", "*.yml"))
	if err != nil || len(paths) < 3 {
		t.Fatalf("want >=3 example configs, got %d (%v)", len(paths), err)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := LoadConfig(filepath.Base(p), data)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if g := cfg.Graph(); !strings.Contains(g, "pipeline "+filepath.Base(p)) {
			t.Errorf("%s: graph header missing: %q", p, g)
		}
	}
}

// errorCase configs must fail with a position ("file:line:") and a message
// fragment that tells the operator what to fix.
func TestLoadConfigErrors(t *testing.T) {
	cases := []struct {
		name string
		yaml string
		want string // substring of the error
		line int    // expected position (0 = don't check)
	}{
		{"empty", "", "empty config", 1},
		{"no pipeline", "other: 1\n", `unknown top-level key "other"`, 1},
		{"pipeline scalar", "pipeline: yes\n", "must be a sequence", 1},
		{"unknown kind", "pipeline:\n  - segment: warp\n", `unknown segment kind "warp"`, 2},
		{"unknown field", "pipeline:\n  - segment: sflow\n    config:\n      port: 99\n", `no field "port"`, 4},
		{"bad int", "pipeline:\n  - segment: sflow\n    config:\n      batch: many\n", "expected an integer", 4},
		{"range", "pipeline:\n  - segment: sflow\n    config:\n      batch: 0\n", "below minimum", 4},
		{"bad enum", "pipeline:\n  - segment: scrubber\n    config:\n      drop-policy: yolo\n", "invalid value", 4},
		{"bad duration", "pipeline:\n  - segment: sflow\n    config:\n      flush: fast\n", "invalid duration", 4},
		{"missing required", "pipeline:\n  - segment: jsonl\n", `requires field "path"`, 2},
		{"starts with filter", "pipeline:\n  - segment: sample\n  - segment: metrics\n", "must start with an input", 2},
		{"input mid-chain", "pipeline:\n  - segment: sflow\n  - segment: sflow\n  - segment: metrics\n", "only allowed at the start", 3},
		{"ends with filter", "pipeline:\n  - segment: sflow\n  - segment: sample\n", "last segment must be an output", 3},
		{"terminal not last", "pipeline:\n  - segment: sflow\n  - segment: scrubber\n  - segment: metrics\n", "must be the last segment", 3},
		{"two scrubbers", "pipeline:\n  - segment: sflow\n  - segment: tee\n    branches:\n      a:\n        - segment: scrubber\n      b:\n        - segment: scrubber\n", "at most one scrubber", 8},
		{"tee no branches", "pipeline:\n  - segment: sflow\n  - segment: tee\n", "at least one branch", 3},
		{"branches on sflow", "pipeline:\n  - segment: sflow\n    branches:\n      a:\n        - segment: metrics\n  - segment: metrics\n", "does not take branches", 2},
		{"nested tee", "pipeline:\n  - segment: sflow\n  - segment: tee\n    branches:\n      a:\n        - segment: tee\n          branches:\n            b:\n              - segment: metrics\n", "nested branches", 7},
		{"dup branch", "pipeline:\n  - segment: sflow\n  - segment: tee\n    branches:\n      a:\n        - segment: metrics\n      a:\n        - segment: metrics\n", "duplicate key", 7},
		{"shared path", "pipeline:\n  - segment: sflow\n  - segment: jsonl\n    config:\n      path: out.jsonl\n  - segment: csv\n    config:\n      path: out.jsonl\n  - segment: metrics\n", "already written", 6},
		{"dup field", "pipeline:\n  - segment: sflow\n    config:\n      batch: 1\n      batch: 2\n", "duplicate key", 5},
		{"tab indent", "pipeline:\n\t- segment: sflow\n", "tab in indentation", 2},
		{"flow syntax", "pipeline: [a, b]\n", "flow syntax", 1},
		{"anchor", "pipeline:\n  - segment: &x sflow\n", "anchors", 2},
		{"block scalar", "pipeline:\n  - segment: |\n      sflow\n", "block scalars", 2},
		{"multi-doc", "---\npipeline:\n  - segment: sflow\n", "multi-document", 1},
		{"unknown segment key", "pipeline:\n  - segment: sflow\n    options:\n      a: 1\n", `unknown segment key "options"`, 3},
		{"missing kind", "pipeline:\n  - config:\n      batch: 1\n", "missing its \"segment\" kind", 2},
	}
	posRe := regexp.MustCompile(`^t\.yml:(\d+): `)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadConfig("t.yml", []byte(tc.yaml))
			if err == nil {
				t.Fatalf("config accepted:\n%s", tc.yaml)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
			m := posRe.FindStringSubmatch(err.Error())
			if m == nil {
				t.Fatalf("error %q carries no t.yml:line position", err)
			}
			if tc.line > 0 && m[1] != itoa(tc.line) {
				t.Fatalf("error %q at line %s, want %d", err, m[1], tc.line)
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// Programmatic configs (native Go param values) resolve through the same
// schema as YAML.
func TestValidateProgrammatic(t *testing.T) {
	cfg := &Config{
		Name: "flags",
		Pipeline: []SegmentConfig{
			{Kind: "sflow", Params: map[string]any{"listen": ":0", "batch": 128, "flush": 25 * time.Millisecond}},
			{Kind: "scrubber", Params: map[string]any{
				"seed": 7, "window": 2 * time.Hour, "queue-cap": 8,
				"drop-policy": "block", "drop": true,
			}},
		},
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	sc := &cfg.Pipeline[1]
	if sc.Int("seed") != 7 || sc.Dur("window") != 2*time.Hour || !sc.Bool("drop") {
		t.Fatalf("programmatic params resolved wrong: %+v", sc.resolved)
	}
	// Validate is idempotent.
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}

	bad := &Config{Pipeline: []SegmentConfig{
		{Kind: "sflow", Params: map[string]any{"batch": "not-a-number"}},
		{Kind: "metrics"},
	}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "expected an integer") {
		t.Fatalf("bad programmatic value not rejected: %v", err)
	}
}

func TestGraphRendersBranches(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "examples", "pipelines", "dual-sink.yml"))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig("dual-sink.yml", data)
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.Graph()
	for _, want := range []string{
		"1. replay [input]", "2. tee [output]",
		`branch "detect"`, `branch "archive"`,
		"scrubber [output]", "jsonl [output]", "metrics [output]",
		`path="capture.pcap"`, "queue-cap=64",
	} {
		if !strings.Contains(g, want) {
			t.Fatalf("graph missing %q:\n%s", want, g)
		}
	}
}

// The YAML subset parser accepts quoting, escapes, comments, and the
// same-indent sequence style.
func TestYAMLScalars(t *testing.T) {
	cfg, err := LoadConfig("q.yml", []byte(strings.Join([]string{
		"# leading comment",
		"pipeline:",
		"- segment: sflow   # same-indent sequence, trailing comment",
		"  config:",
		`    listen: ":6343"`,
		"    batch: '64'",
		"- segment: jsonl",
		"  config:",
		`    path: "a \"b\"\tc"`,
		"- segment: metrics",
		"  config:",
		"    name: 'it''s'",
		"",
	}, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Pipeline[0].Str("listen"); got != ":6343" {
		t.Fatalf("listen = %q", got)
	}
	if got := cfg.Pipeline[0].Int("batch"); got != 64 {
		t.Fatalf("batch = %d", got)
	}
	if got := cfg.Pipeline[1].Str("path"); got != "a \"b\"\tc" {
		t.Fatalf("path = %q", got)
	}
	if got := cfg.Pipeline[2].Str("name"); got != "it's" {
		t.Fatalf("name = %q", got)
	}
}
