package segment

import (
	"context"
	"fmt"
	"os"
	"sync"

	"github.com/ixp-scrubber/ixpscrubber/internal/balance"
	"github.com/ixp-scrubber/ixpscrubber/internal/dropper"
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
)

// --- dropper ------------------------------------------------------------

// dropperSegment wraps the compiled mitigation stage as a standalone
// filter: records matching the live flat program drop out of the stream in
// place, survivors forward. Inside a scrubber-terminated pipeline the
// scrubber's own embedded stage (drop: true) is the right tool — it is
// what checkpoint restore and training rounds hot-swap; this segment
// serves topologies without a scrubber (offline archiving, tee branches).
type dropperSegment struct {
	stage *dropper.Stage
}

func buildDropper(b *builder, sc *SegmentConfig, next EmitFunc) (Instance, error) {
	stage := dropper.NewStage(next)
	if path := sc.Str("rules"); path != "" {
		text, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("rules: %w", err)
		}
		rules, err := dropper.ParseRules(string(text))
		if err != nil {
			return nil, fmt.Errorf("rules %s: %w", path, err)
		}
		stage.Swap(dropper.Compile(rules))
	}
	// The ixps_dropper_* families are singletons shared with the
	// scrubber's embedded stage; first registrant wins (the scrubber
	// builds first — chains assemble back to front).
	if b.env.Metrics != nil && !b.dropperMetricsClaimed {
		b.dropperMetricsClaimed = true
		stage.RegisterMetrics(b.env.Metrics)
	}
	return &dropperSegment{stage: stage}, nil
}

func (s *dropperSegment) EmitBatch(recs []netflow.Record) { s.stage.EmitBatch(recs) }
func (s *dropperSegment) Start(context.Context) error     { return nil }
func (s *dropperSegment) Close() error                    { return nil }

// Stage exposes the compiled stage (hot swaps, stats).
func (s *dropperSegment) Stage() *dropper.Stage { return s.stage }

// --- balance ------------------------------------------------------------

// balanceSegment runs the per-minute balancer mid-stream: all blackholed
// records plus an equal-sized benign sample survive; the rest drop. Kept
// records re-batch before forwarding. Close flushes the final minute bin.
type balanceSegment struct {
	mu   sync.Mutex
	bal  *balance.Balancer[netflow.Record]
	out  []netflow.Record
	next EmitFunc
	size int
}

func buildBalance(b *builder, sc *SegmentConfig, next EmitFunc) (Instance, error) {
	s := &balanceSegment{next: next, size: int(sc.Int("batch"))}
	s.out = make([]netflow.Record, 0, s.size)
	s.bal = balance.ForRecords(uint64(sc.Int("seed")), s.keep)
	return s, nil
}

// keep runs under s.mu (Add/Flush callers hold it).
func (s *balanceSegment) keep(r netflow.Record) {
	s.out = append(s.out, r)
	if len(s.out) >= s.size {
		s.flushLocked()
	}
}

func (s *balanceSegment) flushLocked() {
	if len(s.out) == 0 {
		return
	}
	if s.next != nil {
		s.next(s.out)
	}
	s.out = s.out[:0]
}

func (s *balanceSegment) EmitBatch(recs []netflow.Record) {
	s.mu.Lock()
	s.bal.AddBatch(recs)
	s.mu.Unlock()
}

func (s *balanceSegment) Start(context.Context) error { return nil }

func (s *balanceSegment) Close() error {
	s.mu.Lock()
	s.bal.Flush()
	s.flushLocked()
	s.mu.Unlock()
	return nil
}

// Stats snapshots the balancer counters.
func (s *balanceSegment) Stats() balance.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bal.Stats
}

// --- sample -------------------------------------------------------------

// sampleSegment keeps every Nth record (deterministic, stream-position
// based), compacting batches in place like the dropper does.
type sampleSegment struct {
	mu    sync.Mutex
	every uint64
	seen  uint64
	next  EmitFunc
}

func buildSample(b *builder, sc *SegmentConfig, next EmitFunc) (Instance, error) {
	return &sampleSegment{every: uint64(sc.Int("every")), next: next}, nil
}

func (s *sampleSegment) EmitBatch(recs []netflow.Record) {
	if s.every <= 1 {
		if s.next != nil {
			s.next(recs)
		}
		return
	}
	s.mu.Lock()
	kept := recs[:0]
	for i := range recs {
		s.seen++
		if s.seen%s.every == 0 {
			kept = append(kept, recs[i])
		}
	}
	s.mu.Unlock()
	if len(kept) > 0 && s.next != nil {
		s.next(kept)
	}
}

func (s *sampleSegment) Start(context.Context) error { return nil }
func (s *sampleSegment) Close() error                { return nil }
