package segment

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"github.com/ixp-scrubber/ixpscrubber/internal/core"
	"github.com/ixp-scrubber/ixpscrubber/internal/dropper"
	"github.com/ixp-scrubber/ixpscrubber/internal/features"
	"github.com/ixp-scrubber/ixpscrubber/internal/ixpsim"
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	modelreg "github.com/ixp-scrubber/ixpscrubber/internal/registry"
)

// --- scrubber -----------------------------------------------------------

// scrubberSegment is the terminal detection chain: the same
// ixpsim.Pipeline the hardwired daemon runs — bounded ingest queue,
// per-minute balancer, sliding window, two-step model, atomic ACL and
// checkpoint publication, optional registry/shadow lifecycle and inline
// mitigation. The segment owns its lifecycle; training ticks stay with
// the host via Pipeline.Scrubber().
type scrubberSegment struct {
	b             *builder
	pipe          *ixpsim.Pipeline
	dropRulesPath string
	importPath    string
}

func buildScrubber(b *builder, sc *SegmentConfig, next EmitFunc) (Instance, error) {
	policy, _ := netflow.ParseDropPolicy(sc.Str("drop-policy")) // enum-validated
	var coreCfg *core.Config
	if sc.Bool("sketch") {
		c := core.DefaultConfig()
		c.Sketch = &features.SketchConfig{Budget: sc.Float("sketch-budget")}
		coreCfg = &c
	}
	var models *modelreg.Registry
	if dir := sc.Str("registry"); dir != "" {
		var err error
		if models, err = modelreg.Open(dir, modelreg.Options{Log: b.env.Log}); err != nil {
			return nil, fmt.Errorf("model registry: %w", err)
		}
	}
	pc := ixpsim.PipelineConfig{
		Seed:            uint64(sc.Int("seed")),
		Window:          sc.Dur("window"),
		QueueCap:        int(sc.Int("queue-cap")),
		DropPolicy:      policy,
		MinTrainRecords: int(sc.Int("min-train")),
		ACLPath:         sc.Str("acl"),
		RulesPath:       sc.Str("rules-out"),
		CheckpointPath:  sc.Str("checkpoint"),
		FS:              b.env.FS,
		Core:            coreCfg,
		Clock:           b.clock,
		Metrics:         b.env.Metrics,
		Log:             b.env.Log,
		Registry:        models,
		Shadow:          sc.Bool("shadow"),
		Drop:            sc.Bool("drop") || sc.Str("drop-rules") != "",
	}
	if b.env.PipelineHook != nil {
		b.env.PipelineHook(&pc)
	}
	if pc.Drop && pc.Metrics != nil {
		// NewPipeline registers the embedded stage under ixps_dropper_*;
		// a standalone dropper segment in the same config must not
		// double-register the families.
		b.dropperMetricsClaimed = true
	}
	s := &scrubberSegment{
		b:             b,
		pipe:          ixpsim.NewPipeline(pc),
		dropRulesPath: sc.Str("drop-rules"),
		importPath:    sc.Str("import"),
	}
	b.scrubber = s
	return s, nil
}

func (s *scrubberSegment) EmitBatch(recs []netflow.Record) { s.pipe.EmitBatch(recs) }

// Pipe exposes the underlying detection pipeline.
func (s *scrubberSegment) Pipe() *ixpsim.Pipeline { return s.pipe }

// Start replays the daemon's exact startup order: static drop rules seed
// the fast path, the checkpoint restores over them (fresher verdicts take
// precedence), an imported classifier installs as challenger, then the
// queue consumer starts.
func (s *scrubberSegment) Start(ctx context.Context) error {
	log := s.b.env.log()
	if s.dropRulesPath != "" {
		text, err := os.ReadFile(s.dropRulesPath)
		if err != nil {
			return fmt.Errorf("drop-rules: %w", err)
		}
		rules, err := dropper.ParseRules(string(text))
		if err != nil {
			return fmt.Errorf("drop-rules %s: %w", s.dropRulesPath, err)
		}
		s.pipe.Dropper().Swap(dropper.Compile(rules))
		log.Info("static drop rules compiled", "path", s.dropRulesPath, "rules", len(rules))
	}
	if _, err := s.pipe.RestoreCheckpoint(); err != nil {
		log.Warn("checkpoint restore failed, starting cold", "err", err)
	}
	if s.importPath != "" {
		bundle, err := os.ReadFile(s.importPath)
		if err != nil {
			return fmt.Errorf("import-classifier: %w", err)
		}
		if err := s.pipe.ImportClassifier(ctx, bundle); err != nil {
			return fmt.Errorf("import-classifier: %w", err)
		}
		log.Info("classifier-only bundle imported as challenger", "path", s.importPath)
	}
	s.pipe.Start(ctx)
	return nil
}

// Close drains the ingest queue through the consumer and stops it.
func (s *scrubberSegment) Close() error {
	s.pipe.Stop()
	return nil
}

// --- jsonl / csv archives -----------------------------------------------

// archiveSegment writes every record to a file, then forwards the stream —
// outputs are taps, not sinks, so they compose down a chain.
type archiveSegment struct {
	next   EmitFunc
	path   string
	header string
	render func(w *bufio.Writer, r *netflow.Record) error

	mu        sync.Mutex
	f         *os.File
	w         *bufio.Writer
	delivered atomic.Uint64
	errs      atomic.Uint64
}

// Delivered returns records written to the archive so far.
func (s *archiveSegment) Delivered() uint64 { return s.delivered.Load() }

// WriteErrors returns records lost to write failures.
func (s *archiveSegment) WriteErrors() uint64 { return s.errs.Load() }

func buildJSONL(b *builder, sc *SegmentConfig, next EmitFunc) (Instance, error) {
	return &archiveSegment{
		next: next,
		path: sc.Str("path"),
		render: func(w *bufio.Writer, r *netflow.Record) error {
			data, err := json.Marshal(r)
			if err != nil {
				return err
			}
			if _, err := w.Write(data); err != nil {
				return err
			}
			return w.WriteByte('\n')
		},
	}, nil
}

const csvHeader = "timestamp,src_ip,src_port,dst_ip,dst_port,protocol,tcp_flags,fragment,packets,bytes,sampling_rate,blackholed\n"

func buildCSV(b *builder, sc *SegmentConfig, next EmitFunc) (Instance, error) {
	return &archiveSegment{
		next:   next,
		path:   sc.Str("path"),
		header: csvHeader,
		render: func(w *bufio.Writer, r *netflow.Record) error {
			_, err := fmt.Fprintf(w, "%d,%s,%d,%s,%d,%d,%d,%t,%d,%d,%d,%t\n",
				r.Timestamp, r.SrcIP, r.SrcPort, r.DstIP, r.DstPort,
				r.Protocol, r.TCPFlags, r.Fragment, r.Packets, r.Bytes,
				r.SamplingRate, r.Blackholed)
			return err
		},
	}, nil
}

func (s *archiveSegment) Start(context.Context) error {
	f, err := os.Create(s.path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	if s.header != "" {
		if _, err := w.WriteString(s.header); err != nil {
			f.Close()
			return err
		}
	}
	s.mu.Lock()
	s.f, s.w = f, w
	s.mu.Unlock()
	return nil
}

func (s *archiveSegment) EmitBatch(recs []netflow.Record) {
	s.mu.Lock()
	if s.w != nil {
		for i := range recs {
			if err := s.render(s.w, &recs[i]); err != nil {
				s.errs.Add(1)
				continue
			}
			s.delivered.Add(1)
		}
	}
	s.mu.Unlock()
	if s.next != nil {
		s.next(recs)
	}
}

func (s *archiveSegment) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.w.Flush()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f, s.w = nil, nil
	return err
}

// --- metrics sink -------------------------------------------------------

// metricsSegment counts the stream onto /metrics under the
// ixps_pipeline_sink_* families, labeled by sink name, and forwards it.
type metricsSegment struct {
	next EmitFunc

	records    atomic.Uint64
	packets    atomic.Uint64
	bytes      atomic.Uint64
	blackholed atomic.Uint64
}

// Delivered returns records counted by this sink.
func (s *metricsSegment) Delivered() uint64 { return s.records.Load() }

func buildMetricsSink(b *builder, sc *SegmentConfig, next EmitFunc) (Instance, error) {
	s := &metricsSegment{next: next}
	if r := b.env.Metrics; r != nil {
		name := sc.Str("name")
		u64 := func(a *atomic.Uint64) func() float64 {
			return func() float64 { return float64(a.Load()) }
		}
		r.CounterVec("ixps_pipeline_sink_records_total",
			"Records delivered to each pipeline sink.", "sink").
			WithFunc(u64(&s.records), name)
		r.CounterVec("ixps_pipeline_sink_packets_total",
			"Estimated packets (sampling-scaled) delivered to each pipeline sink.", "sink").
			WithFunc(u64(&s.packets), name)
		r.CounterVec("ixps_pipeline_sink_bytes_total",
			"Estimated bytes (sampling-scaled) delivered to each pipeline sink.", "sink").
			WithFunc(u64(&s.bytes), name)
		r.CounterVec("ixps_pipeline_sink_blackholed_total",
			"Blackholed-labeled records delivered to each pipeline sink.", "sink").
			WithFunc(u64(&s.blackholed), name)
	}
	return s, nil
}

func (s *metricsSegment) EmitBatch(recs []netflow.Record) {
	var pkts, bytes, bh uint64
	for i := range recs {
		pkts += recs[i].Packets
		bytes += recs[i].Bytes
		if recs[i].Blackholed {
			bh++
		}
	}
	s.records.Add(uint64(len(recs)))
	s.packets.Add(pkts)
	s.bytes.Add(bytes)
	s.blackholed.Add(bh)
	if s.next != nil {
		s.next(recs)
	}
}

func (s *metricsSegment) Start(context.Context) error { return nil }
func (s *metricsSegment) Close() error                { return nil }

// --- tee ----------------------------------------------------------------

// teeSegment fans the stream out: every batch is offered to each branch's
// bounded queue (which copies it), and per-branch consumer goroutines
// drive the branch chains concurrently. Conservation is per branch:
// records in == records delivered + records dropped by the queue policy,
// all counted in the branch's QueueStats.
type teeSegment struct {
	b        *builder
	branches []*teeBranch
	wg       sync.WaitGroup
}

type teeBranch struct {
	name  string
	queue *netflow.Queue
	segs  []*builtSegment
	head  EmitFunc
}

func buildTee(b *builder, sc *SegmentConfig, next EmitFunc) (Instance, error) {
	capBatches := int(sc.Int("queue-cap"))
	policy, _ := netflow.ParseDropPolicy(sc.Str("policy")) // enum-validated
	t := &teeSegment{b: b}
	for bi := range sc.Branches {
		br := &sc.Branches[bi]
		segs, head, err := buildChain(b, br.Pipeline, br.Name)
		if err != nil {
			return nil, fmt.Errorf("branch %q: %w", br.Name, err)
		}
		q := netflow.NewQueue(capBatches, policy)
		if b.env.Metrics != nil {
			q.RegisterMetrics(b.env.Metrics, "tee:"+br.Name)
		}
		t.branches = append(t.branches, &teeBranch{name: br.Name, queue: q, segs: segs, head: head})
	}
	return t, nil
}

func (t *teeSegment) EmitBatch(recs []netflow.Record) {
	for _, br := range t.branches {
		br.queue.Put(recs)
	}
}

func (t *teeSegment) Start(ctx context.Context) error {
	for _, br := range t.branches {
		for i := len(br.segs) - 1; i >= 0; i-- {
			if err := br.segs[i].inst.Start(ctx); err != nil {
				return fmt.Errorf("branch %q segment %s: %w", br.name, br.segs[i].label, err)
			}
		}
	}
	for _, br := range t.branches {
		br := br
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			for {
				// Background context: shutdown is Close draining the
				// queue, not context cancellation — records already
				// admitted must reach their sinks.
				batch, ok := br.queue.Get(context.Background())
				if !ok {
					return
				}
				br.head(batch)
			}
		}()
	}
	return nil
}

// Close drains every branch queue, stops the consumers, then closes the
// branch chains upstream-first.
func (t *teeSegment) Close() error {
	for _, br := range t.branches {
		br.queue.Close()
	}
	t.wg.Wait()
	var first error
	for _, br := range t.branches {
		for _, s := range br.segs {
			if err := s.inst.Close(); err != nil && first == nil {
				first = fmt.Errorf("branch %q segment %s: %w", br.name, s.label, err)
			}
		}
	}
	return first
}

// BranchNames lists the tee's branches in config order.
func (t *teeSegment) BranchNames() []string {
	out := make([]string, len(t.branches))
	for i, br := range t.branches {
		out[i] = br.name
	}
	return out
}

// BranchStats returns the named branch's queue conservation counters.
func (t *teeSegment) BranchStats(name string) *netflow.QueueStats {
	for _, br := range t.branches {
		if br.name == name {
			return &br.queue.Stats
		}
	}
	return nil
}

// BranchInstances returns the named branch's segment instances head-first.
func (t *teeSegment) BranchInstances(name string) []Instance {
	for _, br := range t.branches {
		if br.name == name {
			out := make([]Instance, len(br.segs))
			for i, s := range br.segs {
				out[i] = s.inst
			}
			return out
		}
	}
	return nil
}
