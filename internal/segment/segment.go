package segment

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/acl"
	"github.com/ixp-scrubber/ixpscrubber/internal/ixpsim"
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/obs"
)

// EmitFunc is the batched handoff between segments — the same contract the
// collectors use: the slice (and its records) is reused after the call
// returns, so receivers consume, copy, or compact it synchronously.
type EmitFunc func([]netflow.Record)

// Instance is one assembled segment at runtime.
type Instance interface {
	// EmitBatch accepts one upstream batch. Input segments pass it through
	// unchanged, so Pipeline.Feed can inject test traffic at the head of
	// any chain.
	EmitBatch(recs []netflow.Record)
	// Start launches the segment's goroutines (listeners, replayers, queue
	// consumers). Sockets and files open here, not at build time, so a
	// config can be assembled and inspected without touching the system.
	// Downstream segments start before their upstreams.
	Start(ctx context.Context) error
	// Close stops the segment and releases its resources, upstream-first:
	// by the time a segment closes, nothing feeds it anymore, so it can
	// flush and shut down without losing records.
	Close() error
}

// Env is everything a pipeline needs from its host: logging, metrics, the
// blackhole labeler, clocks, filesystem and socket indirection. The zero
// value runs standalone (wall clock, real sockets, no metrics).
type Env struct {
	Log     *slog.Logger
	Metrics *obs.Registry
	// Label classifies destination IPs against the blackhole registry
	// (bgp.Registry.Covered in the daemon); nil labels nothing.
	Label func(ip netip.Addr, at int64) bool
	// Clock overrides the pipeline clock (unix seconds). When nil and an
	// input declares clock: virtual, the pipeline runs a virtual clock
	// driven by that input's record timestamps; otherwise wall clock.
	Clock func() int64
	// FS indirects ACL/checkpoint writes (fault injection); nil is the
	// real filesystem.
	FS acl.FS
	// ListenPacket opens listener sockets; nil means net.ListenPacket.
	// The chaos harness hands out in-memory conns here.
	ListenPacket func(network, addr string) (net.PacketConn, error)
	// PipelineHook, when set, edits the scrubber segment's assembled
	// ixpsim.PipelineConfig before construction — the escape hatch the
	// chaos harness and cluster use for KeepHook, ConsumeGate, Core,
	// Registry and promotion policy injection.
	PipelineHook func(*ixpsim.PipelineConfig)
}

func (e *Env) log() *slog.Logger {
	if e.Log != nil {
		return e.Log
	}
	return slog.New(slog.DiscardHandler)
}

func (e *Env) listenPacket(network, addr string) (net.PacketConn, error) {
	if e.ListenPacket != nil {
		return e.ListenPacket(network, addr)
	}
	return net.ListenPacket(network, addr)
}

// virtualClock is the record-timestamp-driven clock finite inputs advance.
// Monotonic: Set never moves it backwards.
type virtualClock struct{ t atomic.Int64 }

func (c *virtualClock) Set(t int64) {
	for {
		cur := c.t.Load()
		if t <= cur || c.t.CompareAndSwap(cur, t) {
			return
		}
	}
}

func (c *virtualClock) Now() int64 { return c.t.Load() }

// pipelineMetrics instruments every segment hop.
type pipelineMetrics struct {
	batches *obs.CounterVec
	records *obs.CounterVec
	panics  *obs.CounterVec
}

func newPipelineMetrics(r *obs.Registry) *pipelineMetrics {
	return &pipelineMetrics{
		batches: r.CounterVec("ixps_segment_batches_total",
			"Batches entering each pipeline segment.", "segment"),
		records: r.CounterVec("ixps_segment_records_total",
			"Records entering each pipeline segment.", "segment"),
		panics: r.CounterVec("ixps_segment_panics_total",
			"Batches dropped because the segment panicked (recovered).", "segment"),
	}
}

// builder carries assembly state shared by the build functions.
type builder struct {
	env   *Env
	cfg   *Config
	pm    *pipelineMetrics
	clock func() int64 // resolved pipeline clock (nil = wall)
	vclk  *virtualClock

	// finite counts inputs that end (file replays); their completion
	// closes Pipeline.Done.
	finite sync.WaitGroup
	nFinal int

	// dropperMetricsClaimed: the scrubber's embedded dropper and a
	// standalone dropper segment share the ixps_dropper_* families; only
	// the first registrant (the scrubber, built first) exposes them.
	dropperMetricsClaimed bool

	scrubber *scrubberSegment
}

// Pipeline is an assembled, runnable segment chain.
type Pipeline struct {
	env  Env
	cfg  *Config
	b    *builder
	segs []*builtSegment // head first
	feed EmitFunc
	done chan struct{}

	started bool
	closed  bool
}

type builtSegment struct {
	kind  string
	label string
	inst  Instance
	enter EmitFunc // instrumented entry (panic isolation + counters)
}

// New validates cfg (idempotent) and assembles its pipeline under env.
// Nothing is started and no sockets are bound; call Start.
func New(env Env, cfg *Config) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := &builder{env: &env, cfg: cfg}
	if env.Metrics != nil {
		b.pm = newPipelineMetrics(env.Metrics)
	}
	// Clock resolution: an explicit Env.Clock wins; else the first
	// clock: virtual input turns on the shared virtual clock.
	b.clock = env.Clock
	if b.clock == nil && hasVirtualClock(cfg.Pipeline) {
		b.vclk = &virtualClock{}
		b.clock = b.vclk.Now
	}
	p := &Pipeline{env: env, cfg: cfg, b: b, done: make(chan struct{})}
	segs, head, err := buildChain(b, cfg.Pipeline, "")
	if err != nil {
		return nil, err
	}
	p.segs = segs
	p.feed = head
	return p, nil
}

func hasVirtualClock(chain []SegmentConfig) bool {
	for i := range chain {
		switch chain[i].Kind {
		case "netflow", "replay":
			if chain[i].Str("clock") == "virtual" {
				return true
			}
		}
	}
	return false
}

// buildChain assembles one chain back to front, wiring each segment's next
// to the instrumented entry of its successor, and returns the chain plus
// its head entry. prefix labels branch segments ("archive.1:jsonl").
func buildChain(b *builder, chain []SegmentConfig, prefix string) ([]*builtSegment, EmitFunc, error) {
	segs := make([]*builtSegment, len(chain))
	var next EmitFunc
	for i := len(chain) - 1; i >= 0; i-- {
		sc := &chain[i]
		spec := specs[sc.Kind]
		inst, err := spec.build(b, sc, next)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: segment %d (%s): %w", b.cfg.Name, i+1, sc.Kind, err)
		}
		label := fmt.Sprintf("%d:%s", i+1, sc.Kind)
		if prefix != "" {
			label = prefix + "." + label
		}
		bs := &builtSegment{kind: sc.Kind, label: label, inst: inst}
		bs.enter = instrument(b, bs)
		segs[i] = bs
		next = bs.enter
	}
	return segs, next, nil
}

// instrument wraps a segment's EmitBatch with panic isolation and the
// per-segment obs counters. A panicking segment loses that one batch and
// the pipeline keeps flowing — the same containment the collectors apply
// per datagram.
func instrument(b *builder, bs *builtSegment) EmitFunc {
	var batches, records, panics *obs.Counter
	if b.pm != nil {
		batches = b.pm.batches.With(bs.label)
		records = b.pm.records.With(bs.label)
		panics = b.pm.panics.With(bs.label)
	}
	log := b.env.log()
	return func(recs []netflow.Record) {
		if len(recs) == 0 {
			return
		}
		if batches != nil {
			batches.Inc()
			records.Add(uint64(len(recs)))
		}
		defer func() {
			if r := recover(); r != nil {
				if panics != nil {
					panics.Inc()
				}
				log.Error("segment panicked; batch dropped", "segment", bs.label, "panic", r)
			}
		}()
		bs.inst.EmitBatch(recs)
	}
}

// Start launches the pipeline: downstream segments first, so every
// segment's next hop is live before traffic can reach it. A failed Start
// closes what already started and returns the error.
func (p *Pipeline) Start(ctx context.Context) error {
	if p.started {
		return fmt.Errorf("segment: pipeline already started")
	}
	p.started = true
	for i := len(p.segs) - 1; i >= 0; i-- {
		if err := p.segs[i].inst.Start(ctx); err != nil {
			for j := i + 1; j < len(p.segs); j++ {
				_ = p.segs[j].inst.Close()
			}
			return fmt.Errorf("segment %s: %w", p.segs[i].label, err)
		}
	}
	if p.b.nFinal > 0 {
		go func() {
			p.b.finite.Wait()
			close(p.done)
		}()
	}
	return nil
}

// Feed injects one batch at the head of the pipeline — the test and bench
// entry point. The batch follows the EmitFunc contract (reused after
// return).
func (p *Pipeline) Feed(recs []netflow.Record) { p.feed(recs) }

// Done is closed when every finite input (file/pcap replay, head-position
// diskbuffer) has delivered its last record. Pipelines with only live
// socket inputs never close it.
func (p *Pipeline) Done() <-chan struct{} { return p.done }

// Scrubber exposes the chain's detection pipeline (nil when the config has
// no scrubber segment) for training ticks, checkpoints and readiness.
func (p *Pipeline) Scrubber() *ixpsim.Pipeline {
	if p.b.scrubber == nil {
		return nil
	}
	return p.b.scrubber.pipe
}

// Now returns the pipeline clock in unix seconds: the resolved Env or
// virtual clock when one exists, wall time otherwise. Hosts use it to
// timestamp the final training round after a finite input drains.
func (p *Pipeline) Now() int64 {
	if p.b.clock != nil {
		return p.b.clock()
	}
	return time.Now().Unix()
}

// Instances returns the main chain's segments head-first (tee branches are
// reachable through the tee instance).
func (p *Pipeline) Instances() []Instance {
	out := make([]Instance, len(p.segs))
	for i, s := range p.segs {
		out[i] = s.inst
	}
	return out
}

// Close shuts the pipeline down upstream-first: inputs stop producing,
// then each downstream segment flushes and closes with its feed already
// quiet. Terminal queues (scrubber ingest, tee branches) drain fully. The
// first error is returned; Close always visits every segment.
func (p *Pipeline) Close() error {
	if p.closed {
		return nil
	}
	p.closed = true
	var first error
	for _, s := range p.segs {
		if err := s.inst.Close(); err != nil && first == nil {
			first = fmt.Errorf("segment %s: %w", s.label, err)
		}
	}
	return first
}
