package segment

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Config is a validated (or to-be-validated) pipeline description: an
// ordered segment chain, possibly fanning out through a tee's branches.
// It is produced by LoadConfig from YAML or constructed programmatically
// (the daemon's flag path and the chaos harness build the same struct);
// both go through Validate, so one schema governs every assembly path.
type Config struct {
	// Name labels error positions ("pipeline.yml:12: ..."); programmatic
	// configs default to "<config>".
	Name     string
	Pipeline []SegmentConfig
}

// SegmentConfig selects one segment kind plus its parameters. Params values
// are raw: strings from YAML scalars, or native Go values (int, bool,
// time.Duration, ...) from programmatic construction; Validate resolves
// both through the kind's FieldSpec schema.
type SegmentConfig struct {
	Kind   string
	Params map[string]any
	// Branches is the tee's fan-out: named sub-pipelines each receiving
	// every record. Only the tee kind accepts branches.
	Branches []Branch

	// Line is the segment's source line (0 for programmatic configs).
	Line int
	// paramLine positions individual params for error messages.
	paramLine map[string]int

	// resolved holds the typed, defaulted, range-checked params after
	// Validate.
	resolved map[string]any
}

// Branch is one named tee output chain.
type Branch struct {
	Name     string
	Pipeline []SegmentConfig
	Line     int
}

// Resolved param accessors. They panic when called before Validate —
// builders only run on validated configs.

func (sc *SegmentConfig) get(k string) any {
	if sc.resolved == nil {
		panic("segment: config not validated")
	}
	v, ok := sc.resolved[k]
	if !ok {
		panic("segment: no such field " + sc.Kind + "." + k)
	}
	return v
}

// Str returns a resolved string field.
func (sc *SegmentConfig) Str(k string) string { return sc.get(k).(string) }

// Int returns a resolved int field.
func (sc *SegmentConfig) Int(k string) int64 { return sc.get(k).(int64) }

// Float returns a resolved float field.
func (sc *SegmentConfig) Float(k string) float64 { return sc.get(k).(float64) }

// Bool returns a resolved bool field.
func (sc *SegmentConfig) Bool(k string) bool { return sc.get(k).(bool) }

// Dur returns a resolved duration field.
func (sc *SegmentConfig) Dur(k string) time.Duration { return sc.get(k).(time.Duration) }

// LoadConfig parses and validates a YAML pipeline config. Every error
// carries a file:line position.
func LoadConfig(name string, data []byte) (*Config, error) {
	root, err := parseYAML(name, data)
	if err != nil {
		return nil, err
	}
	for _, k := range root.keys {
		if k != "pipeline" {
			return nil, errAt(name, root.keyLine[k], "unknown top-level key %q (only \"pipeline\" is allowed)", k)
		}
	}
	pn, ok := root.vals["pipeline"]
	if !ok {
		return nil, errAt(name, root.line, "missing \"pipeline\" key")
	}
	if pn.kind != seqNode {
		return nil, errAt(name, pn.line, "\"pipeline\" must be a sequence of segments")
	}
	cfg := &Config{Name: name}
	cfg.Pipeline, err = decodeChain(name, pn, true)
	if err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

func decodeChain(file string, seq *node, allowBranches bool) ([]SegmentConfig, error) {
	out := make([]SegmentConfig, 0, len(seq.items))
	for _, item := range seq.items {
		if item.kind != mapNode {
			return nil, errAt(file, item.line, "each pipeline entry must be a mapping with a \"segment\" key")
		}
		sc := SegmentConfig{Line: item.line, Params: map[string]any{}, paramLine: map[string]int{}}
		for _, k := range item.keys {
			v := item.vals[k]
			switch k {
			case "segment":
				if v.kind != scalarNode {
					return nil, errAt(file, v.line, "\"segment\" must be a segment kind name")
				}
				sc.Kind = v.value
			case "config":
				if v.kind != mapNode {
					return nil, errAt(file, v.line, "\"config\" must be a mapping of field: value pairs")
				}
				for _, fk := range v.keys {
					fv := v.vals[fk]
					if fv.kind != scalarNode {
						return nil, errAt(file, fv.line, "field %q must be a scalar value", fk)
					}
					sc.Params[fk] = fv.value
					sc.paramLine[fk] = fv.line
				}
			case "branches":
				if !allowBranches {
					return nil, errAt(file, item.keyLine[k], "nested branches are not allowed (a tee cannot contain another tee)")
				}
				if v.kind != mapNode {
					return nil, errAt(file, v.line, "\"branches\" must be a mapping of name: segment-list")
				}
				for _, bn := range v.keys {
					bv := v.vals[bn]
					if bv.kind != seqNode {
						return nil, errAt(file, bv.line, "branch %q must be a sequence of segments", bn)
					}
					chain, err := decodeChain(file, bv, false)
					if err != nil {
						return nil, err
					}
					sc.Branches = append(sc.Branches, Branch{Name: bn, Pipeline: chain, Line: v.keyLine[bn]})
				}
			default:
				return nil, errAt(file, item.keyLine[k], "unknown segment key %q (expected \"segment\", \"config\" or \"branches\")", k)
			}
		}
		if sc.Kind == "" {
			return nil, errAt(file, item.line, "pipeline entry is missing its \"segment\" kind")
		}
		out = append(out, sc)
	}
	return out, nil
}

// Validate resolves every segment's params through its kind's schema and
// enforces the structural rules: the pipeline starts with an input, ends
// with an output, inputs appear only at the head (diskbuffer excepted),
// terminal segments sit last, at most one scrubber exists, tee branches
// are uniquely named output chains and never nest. Validate is idempotent.
func (c *Config) Validate() error {
	if c.Name == "" {
		c.Name = "<config>"
	}
	if len(c.Pipeline) == 0 {
		return errAt(c.Name, 0, "pipeline has no segments")
	}
	v := &validator{file: c.Name, paths: map[string]string{}, names: map[string]string{}}
	if err := v.chain(c.Pipeline, ""); err != nil {
		return withFile(err, c.Name)
	}
	if first := specs[c.Pipeline[0].Kind]; first.Group != GroupInput {
		return withFile(c.Pipeline[0].errf("pipeline must start with an input segment, not %s (%s)",
			c.Pipeline[0].Kind, first.Group), c.Name)
	}
	return nil
}

// withFile fills the file position on errors minted by SegmentConfig
// helpers, which do not know which config they belong to.
func withFile(err error, file string) error {
	if pe, ok := err.(*posError); ok && pe.file == "" {
		pe.file = file
	}
	return err
}

type validator struct {
	file      string
	scrubbers int
	paths     map[string]string // sink file path -> first segment using it
	names     map[string]string // metrics sink name -> first use
}

// chain validates one segment chain; branch is "" for the main pipeline.
func (v *validator) chain(chain []SegmentConfig, branch string) error {
	if len(chain) == 0 {
		return errAt(v.file, 0, "branch %q has no segments", branch)
	}
	for i := range chain {
		sc := &chain[i]
		spec := specs[sc.Kind]
		if spec == nil {
			return sc.errf("unknown segment kind %q (known kinds: %s)", sc.Kind, suggestKinds())
		}
		if err := v.resolve(spec, sc); err != nil {
			return err
		}
		last := i == len(chain)-1
		switch {
		case spec.Group == GroupInput && !spec.AnyPosition && (i > 0 || branch != ""):
			return sc.errf("input segment %q is only allowed at the start of the main pipeline", sc.Kind)
		case spec.Terminal && !last:
			return sc.errf("segment %q consumes the stream and must be the last segment", sc.Kind)
		case last && spec.Group != GroupOutput && !(spec.Kind == "diskbuffer" && branch != ""):
			return sc.errf("the last segment must be an output, not %s (%s)", sc.Kind, spec.Group)
		}
		if len(sc.Branches) > 0 && !spec.HasBranches {
			return sc.errf("segment %q does not take branches", sc.Kind)
		}
		switch sc.Kind {
		case "scrubber":
			v.scrubbers++
			if v.scrubbers > 1 {
				return sc.errf("at most one scrubber segment is allowed per pipeline (its ingest queue and model are singletons)")
			}
			for _, f := range []string{"acl", "rules-out", "checkpoint"} {
				if err := v.uniquePath(sc, sc.Str(f)); err != nil {
					return err
				}
			}
		case "jsonl", "csv":
			if err := v.uniquePath(sc, sc.Str("path")); err != nil {
				return err
			}
		case "metrics":
			name := sc.Str("name")
			if prev, dup := v.names[name]; dup {
				return sc.errf("metrics sink name %q already used by %s (names must be unique for conservation accounting)", name, prev)
			}
			v.names[name] = sc.Kind
		case "tee":
			if len(sc.Branches) == 0 {
				return sc.errf("tee requires at least one branch")
			}
			seen := map[string]int{}
			for bi := range sc.Branches {
				b := &sc.Branches[bi]
				if prev, dup := seen[b.Name]; dup {
					return errAt(v.file, b.Line, "duplicate branch name %q (first defined at line %d)", b.Name, prev)
				}
				seen[b.Name] = b.Line
				if len(b.Pipeline) == 0 {
					return errAt(v.file, b.Line, "branch %q has no segments", b.Name)
				}
				if err := v.chain(b.Pipeline, b.Name); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (v *validator) uniquePath(sc *SegmentConfig, path string) error {
	if path == "" {
		return nil
	}
	if prev, dup := v.paths[path]; dup {
		return sc.errf("output path %q already written by segment %q (concurrent sinks must not share files)", path, prev)
	}
	v.paths[path] = sc.Kind
	return nil
}

// resolve type-checks, defaults and range-checks one segment's params.
func (v *validator) resolve(spec *Spec, sc *SegmentConfig) error {
	resolved := make(map[string]any, len(spec.Fields))
	for k, raw := range sc.Params {
		f := spec.field(k)
		if f == nil {
			return sc.errfAt(k, "segment %q has no field %q (fields: %s)", sc.Kind, k, fieldNames(spec))
		}
		val, err := resolveValue(f, raw)
		if err != nil {
			return sc.errfAt(k, "field %q: %s", k, err)
		}
		resolved[k] = val
	}
	for i := range spec.Fields {
		f := &spec.Fields[i]
		if _, ok := resolved[f.Name]; ok {
			continue
		}
		if f.Required {
			return sc.errf("segment %q requires field %q (%s)", sc.Kind, f.Name, f.Help)
		}
		resolved[f.Name] = f.Default
	}
	sc.resolved = resolved
	return nil
}

func fieldNames(spec *Spec) string {
	names := make([]string, len(spec.Fields))
	for i := range spec.Fields {
		names[i] = spec.Fields[i].Name
	}
	return strings.Join(names, ", ")
}

// errf positions an error at the segment's own line.
func (sc *SegmentConfig) errf(format string, args ...any) error {
	return &posError{file: "", line: sc.Line, msg: fmt.Sprintf(format, args...)}
}

// errfAt positions an error at a param's line, falling back to the segment.
func (sc *SegmentConfig) errfAt(param, format string, args ...any) error {
	line := sc.Line
	if l, ok := sc.paramLine[param]; ok {
		line = l
	}
	return &posError{file: "", line: line, msg: fmt.Sprintf(format, args...)}
}

// resolveValue converts one raw param (YAML string or native Go value) to
// the field's type and checks its range/enum.
func resolveValue(f *FieldSpec, raw any) (any, error) {
	switch f.Type {
	case TypeString:
		s, ok := raw.(string)
		if !ok {
			return nil, fmt.Errorf("expected a string, got %T", raw)
		}
		if len(f.Enum) > 0 {
			found := false
			for _, e := range f.Enum {
				if s == e {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("invalid value %q (one of: %s)", s, strings.Join(f.Enum, ", "))
			}
		}
		return s, nil
	case TypeInt:
		n, err := toInt(raw)
		if err != nil {
			return nil, err
		}
		if err := checkRange(f, float64(n), strconv.FormatInt(n, 10)); err != nil {
			return nil, err
		}
		return n, nil
	case TypeFloat:
		x, err := toFloat(raw)
		if err != nil {
			return nil, err
		}
		if err := checkRange(f, x, strconv.FormatFloat(x, 'g', -1, 64)); err != nil {
			return nil, err
		}
		return x, nil
	case TypeBool:
		switch b := raw.(type) {
		case bool:
			return b, nil
		case string:
			switch b {
			case "true":
				return true, nil
			case "false":
				return false, nil
			}
			return nil, fmt.Errorf("expected true or false, got %q", b)
		}
		return nil, fmt.Errorf("expected a bool, got %T", raw)
	case TypeDuration:
		var d time.Duration
		switch x := raw.(type) {
		case time.Duration:
			d = x
		case string:
			var err error
			if d, err = time.ParseDuration(x); err != nil {
				return nil, fmt.Errorf("invalid duration %q (e.g. \"50ms\", \"24h\")", x)
			}
		default:
			return nil, fmt.Errorf("expected a duration, got %T", raw)
		}
		if err := checkRange(f, float64(d), d.String()); err != nil {
			return nil, err
		}
		return d, nil
	}
	return nil, fmt.Errorf("unhandled field type %v", f.Type)
}

func toInt(raw any) (int64, error) {
	switch x := raw.(type) {
	case int:
		return int64(x), nil
	case int64:
		return x, nil
	case uint64:
		if x > 1<<62 {
			return 0, fmt.Errorf("value %d overflows int64", x)
		}
		return int64(x), nil
	case uint:
		return int64(x), nil
	case int32:
		return int64(x), nil
	case uint32:
		return int64(x), nil
	case string:
		n, err := strconv.ParseInt(x, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("expected an integer, got %q", x)
		}
		return n, nil
	}
	return 0, fmt.Errorf("expected an integer, got %T", raw)
}

func toFloat(raw any) (float64, error) {
	switch x := raw.(type) {
	case float64:
		return x, nil
	case float32:
		return float64(x), nil
	case int:
		return float64(x), nil
	case int64:
		return float64(x), nil
	case string:
		v, err := strconv.ParseFloat(x, 64)
		if err != nil {
			return 0, fmt.Errorf("expected a number, got %q", x)
		}
		return v, nil
	}
	return 0, fmt.Errorf("expected a number, got %T", raw)
}

func checkRange(f *FieldSpec, v float64, display string) error {
	if f.MinSet && v < f.Min {
		return fmt.Errorf("value %s below minimum %s", display, rangeBound(f, f.Min))
	}
	if f.MaxSet && v > f.Max {
		return fmt.Errorf("value %s above maximum %s", display, rangeBound(f, f.Max))
	}
	return nil
}

func rangeBound(f *FieldSpec, bound float64) string {
	if f.Type == TypeDuration {
		return time.Duration(bound).String()
	}
	return strconv.FormatFloat(bound, 'g', -1, 64)
}

// Graph renders the resolved segment graph — what -validate-config prints.
// The config must have passed Validate.
func (c *Config) Graph() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pipeline %s (%d segments)\n", c.Name, len(c.Pipeline))
	renderChain(&b, c.Pipeline, "  ")
	return b.String()
}

func renderChain(b *strings.Builder, chain []SegmentConfig, indent string) {
	for i := range chain {
		sc := &chain[i]
		spec := specs[sc.Kind]
		fmt.Fprintf(b, "%s%d. %s [%s]", indent, i+1, sc.Kind, spec.Group)
		for fi := range spec.Fields {
			f := &spec.Fields[fi]
			v := sc.resolved[f.Name]
			if s, ok := v.(string); ok {
				if s == "" {
					continue // unset optional path/file fields add noise
				}
				fmt.Fprintf(b, " %s=%q", f.Name, s)
				continue
			}
			fmt.Fprintf(b, " %s=%v", f.Name, v)
		}
		b.WriteByte('\n')
		for bi := range sc.Branches {
			br := &sc.Branches[bi]
			fmt.Fprintf(b, "%s   branch %q:\n", indent, br.Name)
			renderChain(b, br.Pipeline, indent+"     ")
		}
	}
}
