package segment

import (
	"sort"
	"strings"
	"time"
)

// Group classifies a segment by its role in the pipeline, following the
// flowpipeline taxonomy: inputs originate the record stream, filters drop
// records, modifiers rewrite them, outputs deliver them to a sink. Every
// segment regardless of group forwards its stream to its successor (outputs
// included), except terminal segments (scrubber, tee).
type Group int

const (
	GroupInput Group = iota
	GroupFilter
	GroupModify
	GroupOutput
)

func (g Group) String() string {
	switch g {
	case GroupInput:
		return "input"
	case GroupFilter:
		return "filter"
	case GroupModify:
		return "modify"
	case GroupOutput:
		return "output"
	}
	return "unknown"
}

// FieldType is the value type of one segment config field.
type FieldType int

const (
	TypeString FieldType = iota
	TypeInt
	TypeFloat
	TypeBool
	TypeDuration
)

func (t FieldType) String() string {
	switch t {
	case TypeString:
		return "string"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeBool:
		return "bool"
	case TypeDuration:
		return "duration"
	}
	return "unknown"
}

// FieldSpec declares one config field of a segment: its type, whether it
// is required, its default, and its validity range.
type FieldSpec struct {
	Name     string
	Type     FieldType
	Required bool
	// Default is applied when the field is absent (ignored when Required).
	// Its dynamic type matches Type: string, int64, float64, bool, or
	// time.Duration.
	Default any
	// Min/Max bound numeric (int/float) and duration fields when MinSet /
	// MaxSet; bounds are inclusive.
	Min, Max       float64
	MinSet, MaxSet bool
	// Enum restricts a string field to a closed set.
	Enum []string
	Help string
}

// Spec declares one segment kind: its group, config schema, and builder.
type Spec struct {
	Kind  string
	Group Group
	Help  string
	// Fields is the closed config schema; unknown keys are rejected.
	Fields []FieldSpec
	// Terminal marks segments that consume the stream without forwarding
	// (scrubber, tee); they must sit last in their pipeline.
	Terminal bool
	// AnyPosition lifts the inputs-only-at-position-0 rule (diskbuffer,
	// which journals mid-stream and replays when first).
	AnyPosition bool
	// HasBranches marks the fan-out segment (tee), whose config carries
	// nested branch pipelines instead of scalar fields only.
	HasBranches bool
	// build constructs the runtime instance. next is the instrumented
	// emit into the downstream segment (nil for terminal segments or a
	// pipeline tail).
	build func(b *builder, sc *SegmentConfig, next EmitFunc) (Instance, error)
}

func (s *Spec) field(name string) *FieldSpec {
	for i := range s.Fields {
		if s.Fields[i].Name == name {
			return &s.Fields[i]
		}
	}
	return nil
}

// specs is the closed registry of segment kinds.
var specs = map[string]*Spec{}

func register(s *Spec) {
	if _, dup := specs[s.Kind]; dup {
		panic("segment: duplicate spec " + s.Kind)
	}
	specs[s.Kind] = s
}

// Kinds lists the registered segment kinds, sorted.
func Kinds() []string {
	out := make([]string, 0, len(specs))
	for k := range specs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// LookupSpec returns the spec for a segment kind, or nil.
func LookupSpec(kind string) *Spec { return specs[kind] }

// intField/floatField/durField helpers keep the spec tables readable.
func intField(name string, def int64, min, max float64, help string) FieldSpec {
	return FieldSpec{Name: name, Type: TypeInt, Default: def, Min: min, Max: max, MinSet: true, MaxSet: true, Help: help}
}

func strField(name, def, help string) FieldSpec {
	return FieldSpec{Name: name, Type: TypeString, Default: def, Help: help}
}

func boolField(name string, def bool, help string) FieldSpec {
	return FieldSpec{Name: name, Type: TypeBool, Default: def, Help: help}
}

func durField(name string, def time.Duration, help string) FieldSpec {
	return FieldSpec{Name: name, Type: TypeDuration, Default: def, Min: 0, MinSet: true, Help: help}
}

func enumField(name, def string, enum []string, help string) FieldSpec {
	return FieldSpec{Name: name, Type: TypeString, Default: def, Enum: enum, Help: help}
}

func requiredStr(name, help string) FieldSpec {
	return FieldSpec{Name: name, Type: TypeString, Required: true, Help: help}
}

func init() {
	register(&Spec{
		Kind: "sflow", Group: GroupInput,
		Help: "UDP sFlow v5 listener converting flow samples to labeled records",
		Fields: []FieldSpec{
			strField("listen", ":6343", "UDP address to receive sFlow datagrams on"),
			intField("batch", 256, 1, 65536, "records per downstream batch"),
			durField("flush", 50*time.Millisecond, "partial-batch flush bound while the stream idles"),
		},
		build: buildSflow,
	})
	register(&Spec{
		Kind: "ipfix", Group: GroupInput,
		Help: "UDP IPFIX listener converting flow records to labeled records",
		Fields: []FieldSpec{
			strField("listen", ":4739", "UDP address to receive IPFIX messages on"),
			intField("batch", 256, 1, 65536, "records per downstream batch"),
			durField("flush", 50*time.Millisecond, "partial-batch flush bound while the stream idles"),
		},
		build: buildIpfix,
	})
	register(&Spec{
		Kind: "netflow", Group: GroupInput,
		Help: "reads a stored binary flow dataset (the netflow codec) and replays it",
		Fields: []FieldSpec{
			requiredStr("path", "flow dataset file to read"),
			intField("batch", 256, 1, 65536, "records per downstream batch"),
			enumField("clock", "virtual", []string{"virtual", "none"},
				"virtual drives the pipeline clock from record timestamps"),
		},
		build: buildNetflowFile,
	})
	register(&Spec{
		Kind: "replay", Group: GroupInput,
		Help: "replays captured frames from a pcap file as flow records, virtual-clock paced",
		Fields: []FieldSpec{
			requiredStr("path", "pcap file to replay (packet.PcapWriter format)"),
			intField("batch", 256, 1, 65536, "records per downstream batch"),
			intField("sampling-rate", 1, 1, 1<<31, "1:N sampling rate to scale packet/byte counts by"),
			enumField("clock", "virtual", []string{"virtual", "none"},
				"virtual drives the pipeline clock from frame timestamps"),
			FieldSpec{Name: "speed", Type: TypeFloat, Default: float64(0), Min: 0, MinSet: true,
				Help: "wall-clock pacing multiplier; 0 replays as fast as downstream allows"},
		},
		build: buildReplay,
	})
	register(&Spec{
		Kind: "diskbuffer", Group: GroupInput, AnyPosition: true,
		Help: "spill-to-disk WAL: journals batches before forwarding and replays leftover spill from a crashed run on start",
		Fields: []FieldSpec{
			requiredStr("dir", "directory holding the write-ahead spill files"),
			boolField("sync", false, "fsync the spill file after every batch"),
			intField("batch", 256, 1, 65536, "records per replayed batch"),
		},
		build: buildDiskbuffer,
	})
	register(&Spec{
		Kind: "dropper", Group: GroupFilter,
		Help: "compiled mitigation stage: drops records matching the live flat match program",
		Fields: []FieldSpec{
			strField("rules", "", "file of static drop rules compiled into the stage at build"),
		},
		build: buildDropper,
	})
	register(&Spec{
		Kind: "balance", Group: GroupFilter,
		Help: "per-minute balancer: keeps all blackholed plus an equal-sized benign sample",
		Fields: []FieldSpec{
			intField("seed", 0, 0, float64(1<<62), "benign sampling seed"),
			intField("batch", 256, 1, 65536, "records per downstream batch"),
		},
		build: buildBalance,
	})
	register(&Spec{
		Kind: "sample", Group: GroupFilter,
		Help: "deterministic 1-in-N downsampling of the record stream",
		Fields: []FieldSpec{
			intField("every", 1, 1, 1<<31, "keep every Nth record"),
		},
		build: buildSample,
	})
	register(&Spec{
		Kind: "scrubber", Group: GroupOutput, Terminal: true,
		Help: "the full detection chain: bounded queue, balancer, sliding window, two-step model, ACL writer",
		Fields: []FieldSpec{
			intField("seed", 0, 0, float64(1<<62), "balancer sampling seed"),
			durField("window", 24*time.Hour, "sliding training window"),
			intField("queue-cap", 64, 1, 1<<20, "ingest queue capacity in batches"),
			enumField("drop-policy", "drop-newest", []string{"block", "drop-newest", "drop-oldest"},
				"full-queue policy"),
			intField("min-train", 100, 1, 1<<31, "minimum balanced records before a round trains"),
			strField("acl", "", "file to atomically publish rendered ACLs to"),
			strField("rules-out", "", "file to export the mined rule list to"),
			strField("checkpoint", "", "file to persist pipeline state to (and restore from)"),
			strField("registry", "", "directory for the versioned model registry"),
			boolField("shadow", false, "hold new models as shadow challengers before promotion"),
			strField("import", "", "classifier-only bundle to import as the standing challenger on start"),
			boolField("sketch", false, "bounded-memory sketch aggregation"),
			FieldSpec{Name: "sketch-budget", Type: TypeFloat, Default: 0.05, Min: 0.0001, Max: 0.5,
				MinSet: true, MaxSet: true, Help: "relative exactness budget for sketch mode"},
			boolField("drop", false, "compile champion verdicts into the inline mitigation fast path"),
			strField("drop-rules", "", "file of static drop rules seeding the fast path"),
		},
		build: buildScrubber,
	})
	register(&Spec{
		Kind: "jsonl", Group: GroupOutput,
		Help: "archives every record as one JSON line, then forwards the stream",
		Fields: []FieldSpec{
			requiredStr("path", "archive file to write"),
		},
		build: buildJSONL,
	})
	register(&Spec{
		Kind: "csv", Group: GroupOutput,
		Help: "archives every record as one CSV row, then forwards the stream",
		Fields: []FieldSpec{
			requiredStr("path", "archive file to write"),
		},
		build: buildCSV,
	})
	register(&Spec{
		Kind: "metrics", Group: GroupOutput,
		Help: "terminal-friendly sink counting records, packets, bytes and blackholed share onto /metrics",
		Fields: []FieldSpec{
			strField("name", "sink", "label value for the ixps_pipeline_sink_* families"),
		},
		build: buildMetricsSink,
	})
	register(&Spec{
		Kind: "tee", Group: GroupOutput, Terminal: true, HasBranches: true,
		Help: "fan-out: every batch is delivered to each branch's bounded queue; branches consume concurrently",
		Fields: []FieldSpec{
			intField("queue-cap", 64, 1, 1<<20, "per-branch queue capacity in batches"),
			enumField("policy", "block", []string{"block", "drop-newest", "drop-oldest"},
				"per-branch full-queue policy"),
		},
		build: buildTee,
	})
}

// suggestKinds renders the registry for an unknown-kind error.
func suggestKinds() string { return strings.Join(Kinds(), ", ") }
