package segment

import (
	"context"
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/ipfix"
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/packet"
	"github.com/ixp-scrubber/ixpscrubber/internal/sflow"
)

// passThrough gives input segments the Feed contract: a batch injected at
// the head of the pipeline skips the socket/file machinery and flows
// straight downstream.
type passThrough struct{ next EmitFunc }

func (s *passThrough) EmitBatch(recs []netflow.Record) {
	if s.next != nil {
		s.next(recs)
	}
}

// --- sflow / ipfix listeners -------------------------------------------

// listenerSegment runs one UDP collector (sFlow or IPFIX) as an input.
type listenerSegment struct {
	passThrough
	b      *builder
	addr   string
	listen func(ctx context.Context, conn net.PacketConn) error
	conn   net.PacketConn
	wg     sync.WaitGroup
}

func buildSflow(b *builder, sc *SegmentConfig, next EmitFunc) (Instance, error) {
	c := &sflow.Collector{
		Label:         b.env.Label,
		EmitBatch:     next,
		BatchSize:     int(sc.Int("batch")),
		FlushInterval: sc.Dur("flush"),
		Clock:         b.clock,
		Log:           b.env.Log,
	}
	if b.env.Metrics != nil {
		c.RegisterMetrics(b.env.Metrics)
	}
	return &listenerSegment{
		passThrough: passThrough{next: next},
		b:           b, addr: sc.Str("listen"), listen: c.Listen,
	}, nil
}

func buildIpfix(b *builder, sc *SegmentConfig, next EmitFunc) (Instance, error) {
	c := &ipfix.UDPCollector{
		Label:         b.env.Label,
		EmitBatch:     next,
		BatchSize:     int(sc.Int("batch")),
		FlushInterval: sc.Dur("flush"),
		Log:           b.env.Log,
	}
	if b.env.Metrics != nil {
		c.RegisterMetrics(b.env.Metrics)
	}
	return &listenerSegment{
		passThrough: passThrough{next: next},
		b:           b, addr: sc.Str("listen"), listen: c.Listen,
	}, nil
}

func (s *listenerSegment) Start(ctx context.Context) error {
	conn, err := s.b.env.listenPacket("udp", s.addr)
	if err != nil {
		return err
	}
	s.conn = conn
	log := s.b.env.log()
	log.Info("segment listener up", "addr", conn.LocalAddr())
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		if err := s.listen(ctx, conn); err != nil {
			log.Error("segment listener failed", "addr", s.addr, "err", err)
		}
	}()
	return nil
}

func (s *listenerSegment) Close() error {
	if s.conn != nil {
		// Listen treats a closed conn as clean shutdown: it flushes the
		// pending partial batch and returns.
		_ = s.conn.Close()
	}
	s.wg.Wait()
	return nil
}

// --- netflow file replay ------------------------------------------------

// fileInput is the shared scaffolding of the finite file-driven inputs:
// a reader goroutine plus Done bookkeeping.
type fileInput struct {
	passThrough
	b    *builder
	path string
	run  func(ctx context.Context)
	wg   sync.WaitGroup

	emitted atomic.Uint64
}

// Emitted returns how many records this input has delivered downstream.
// Conservation tests balance it against the sinks.
func (s *fileInput) Emitted() uint64 { return s.emitted.Load() }

func (s *fileInput) Start(ctx context.Context) error {
	s.b.finite.Add(1)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer s.b.finite.Done()
		s.run(ctx)
	}()
	return nil
}

func (s *fileInput) Close() error {
	s.wg.Wait()
	return nil
}

type netflowFileSegment struct{ fileInput }

func buildNetflowFile(b *builder, sc *SegmentConfig, next EmitFunc) (Instance, error) {
	s := &netflowFileSegment{fileInput{
		passThrough: passThrough{next: next},
		b:           b, path: sc.Str("path"),
	}}
	batch := int(sc.Int("batch"))
	virtual := sc.Str("clock") == "virtual"
	b.nFinal++
	s.run = func(ctx context.Context) {
		log := b.env.log()
		f, err := os.Open(s.path)
		if err != nil {
			log.Error("netflow input: open failed", "path", s.path, "err", err)
			return
		}
		defer f.Close()
		r := netflow.NewReader(f)
		if b.env.Metrics != nil {
			r.RegisterMetrics(b.env.Metrics)
		}
		buf := make([]netflow.Record, batch)
		for ctx.Err() == nil {
			n, err := r.ReadBatch(buf)
			if n > 0 {
				s.deliver(buf[:n], virtual)
			}
			if err != nil {
				if !errors.Is(err, io.EOF) {
					log.Error("netflow input: read failed", "path", s.path, "err", err)
				}
				return
			}
		}
	}
	return s, nil
}

// deliver advances the virtual clock to the batch's newest timestamp, then
// emits. The clock moves before the records so a training tick racing the
// replay never sees records from the future.
func (s *fileInput) deliver(batch []netflow.Record, virtual bool) {
	if virtual && s.b.vclk != nil {
		max := batch[0].Timestamp
		for i := 1; i < len(batch); i++ {
			if batch[i].Timestamp > max {
				max = batch[i].Timestamp
			}
		}
		s.b.vclk.Set(max)
	}
	s.emitted.Add(uint64(len(batch)))
	if s.next != nil {
		s.next(batch)
	}
}

// --- pcap replay --------------------------------------------------------

type replaySegment struct{ fileInput }

func buildReplay(b *builder, sc *SegmentConfig, next EmitFunc) (Instance, error) {
	s := &replaySegment{fileInput{
		passThrough: passThrough{next: next},
		b:           b, path: sc.Str("path"),
	}}
	batch := int(sc.Int("batch"))
	rate := uint32(sc.Int("sampling-rate"))
	speed := sc.Float("speed")
	virtual := sc.Str("clock") == "virtual"
	b.nFinal++
	s.run = func(ctx context.Context) {
		log := b.env.log()
		f, err := os.Open(s.path)
		if err != nil {
			log.Error("replay input: open failed", "path", s.path, "err", err)
			return
		}
		defer f.Close()
		// Frames convert through the same sample→record path the live
		// sFlow collector uses, so an offline replay scores identically
		// to the wire.
		conv := &sflow.Collector{Label: b.env.Label}
		r := packet.NewPcapReader(f)
		buf := make([]netflow.Record, 0, batch)
		var frame packet.PcapFrame
		var sample sflow.FlowSample
		var baseTs, baseWall int64 // pacing anchors (unix micros)
		for ctx.Err() == nil {
			if err := r.ReadInto(&frame); err != nil {
				if !errors.Is(err, io.EOF) {
					log.Error("replay input: read failed", "path", s.path, "err", err)
				}
				break
			}
			ts := frame.TsSec
			if speed > 0 {
				nowMicro := time.Now().UnixMicro()
				tsMicro := frame.TsSec*1e6 + frame.TsMicro
				if baseWall == 0 {
					baseWall, baseTs = nowMicro, tsMicro
				} else if lag := float64(tsMicro-baseTs)/speed - float64(nowMicro-baseWall); lag > 0 {
					select {
					case <-ctx.Done():
					case <-time.After(time.Duration(lag) * time.Microsecond):
					}
				}
			}
			sample = sflow.FlowSample{
				SamplingRate: rate,
				FrameLength:  uint32(frame.OrigLen),
				Header:       frame.Data,
			}
			buf = buf[:len(buf)+1]
			if !conv.SampleToRecord(&sample, ts, &buf[len(buf)-1]) {
				buf = buf[:len(buf)-1]
				continue
			}
			if len(buf) == batch {
				s.deliver(buf, virtual)
				buf = buf[:0]
			}
		}
		if len(buf) > 0 {
			s.deliver(buf, virtual)
		}
	}
	return s, nil
}

// --- diskbuffer ---------------------------------------------------------

// diskbufferSegment is the spill-to-disk WAL: every live batch journals to
// an append-only spill file before forwarding downstream (write-ahead:
// the disk has the records before the next hop does), and on Start any
// spill files left by a crashed run replay downstream first. A clean
// Close removes the current run's spill — its records were all delivered
// — so leftover files exist exactly when delivery wasn't confirmed, and
// recovery is at-least-once.
//
// At the head of a pipeline it is a pure replay input (drain the spill of
// a crashed run, then done); mid-stream it is a durability hop.
type diskbufferSegment struct {
	b     *builder
	next  EmitFunc
	dir   string
	sync  bool
	batch int
	head  bool // first segment: finite replay-only input

	mu       sync.Mutex
	f        *os.File
	w        *netflow.Writer
	replayed atomic.Uint64 // records replayed from spill files
	journal  atomic.Uint64 // records journaled this run
	closed   bool

	wg sync.WaitGroup
}

func buildDiskbuffer(b *builder, sc *SegmentConfig, next EmitFunc) (Instance, error) {
	return &diskbufferSegment{
		b:     b,
		next:  next,
		dir:   sc.Str("dir"),
		sync:  sc.Bool("sync"),
		batch: int(sc.Int("batch")),
		head:  isHead(b.cfg, sc),
	}, nil
}

// isHead reports whether sc is the first segment of the main pipeline.
func isHead(cfg *Config, sc *SegmentConfig) bool {
	return len(cfg.Pipeline) > 0 && &cfg.Pipeline[0] == sc
}

// Replayed returns how many spilled records this run replayed downstream.
func (s *diskbufferSegment) Replayed() uint64 { return s.replayed.Load() }

// Journaled returns how many live records this run journaled to its spill.
func (s *diskbufferSegment) Journaled() uint64 { return s.journal.Load() }

func (s *diskbufferSegment) Start(ctx context.Context) error {
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return err
	}
	leftover, err := filepath.Glob(filepath.Join(s.dir, "spill-*.wal"))
	if err != nil {
		return err
	}
	sort.Strings(leftover)
	if s.head {
		// Head position: the spill is the whole input. Replay async so
		// Start stays non-blocking, and count it as a finite source.
		s.b.finite.Add(1)
		s.b.nFinal++
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.b.finite.Done()
			s.replayFiles(ctx, leftover)
		}()
		return nil
	}
	// Mid-stream: drain the crashed run's spill into the (already started)
	// downstream before live traffic interleaves, then open this run's
	// journal.
	s.replayFiles(ctx, leftover)
	f, err := os.CreateTemp(s.dir, "spill-*.wal")
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.f, s.w = f, netflow.NewWriter(f)
	s.mu.Unlock()
	return nil
}

func (s *diskbufferSegment) replayFiles(ctx context.Context, files []string) {
	log := s.b.env.log()
	buf := make([]netflow.Record, s.batch)
	for _, path := range files {
		if ctx.Err() != nil {
			return
		}
		n, err := s.replayFile(ctx, path, buf)
		if err != nil {
			// A truncated tail (crash mid-write) delivers what decodes
			// and drops the torn record — the WAL's atom is one record.
			log.Warn("diskbuffer: spill replay stopped early", "path", path, "records", n, "err", err)
		}
		if err := os.Remove(path); err != nil {
			log.Error("diskbuffer: removing replayed spill failed", "path", path, "err", err)
		}
		log.Info("diskbuffer: spill replayed", "path", path, "records", n)
	}
}

func (s *diskbufferSegment) replayFile(ctx context.Context, path string, buf []netflow.Record) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	r := netflow.NewReader(f)
	var total uint64
	for ctx.Err() == nil {
		n, err := r.ReadBatch(buf)
		if n > 0 {
			total += uint64(n)
			s.replayed.Add(uint64(n))
			if s.next != nil {
				s.next(buf[:n])
			}
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				return total, nil
			}
			return total, err
		}
	}
	return total, ctx.Err()
}

// EmitBatch journals the batch, then forwards it. A journal failure is
// counted and logged but never blocks the stream — durability degrades,
// delivery does not.
func (s *diskbufferSegment) EmitBatch(recs []netflow.Record) {
	s.mu.Lock()
	if s.w != nil && !s.closed {
		ok := true
		for i := range recs {
			if err := s.w.Write(&recs[i]); err != nil {
				s.b.env.log().Error("diskbuffer: journal write failed", "err", err)
				ok = false
				break
			}
		}
		if ok {
			if err := s.w.Flush(); err != nil {
				s.b.env.log().Error("diskbuffer: journal flush failed", "err", err)
			} else if s.sync {
				_ = s.f.Sync()
			}
			s.journal.Add(uint64(len(recs)))
		}
	}
	s.mu.Unlock()
	if s.next != nil {
		s.next(recs)
	}
}

func (s *diskbufferSegment) Close() error {
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.f == nil {
		return nil
	}
	// Clean shutdown: everything journaled was also forwarded, so the
	// spill has served its purpose and is removed. (A crash skips this —
	// that is the point.)
	name := s.f.Name()
	err := s.f.Close()
	s.f, s.w = nil, nil
	if rmErr := os.Remove(name); rmErr != nil && err == nil {
		err = rmErr
	}
	return err
}

// crashForTest simulates an unclean exit for the chaos scenario: the spill
// file handle closes (flushed data survives) but the file is NOT removed,
// exactly as if the process had died.
func (s *diskbufferSegment) crashForTest() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.f != nil {
		_ = s.f.Close()
		s.f, s.w = nil, nil
	}
}
