package segment

import (
	"context"
	"runtime"
	"runtime/debug"
	"testing"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/ixpsim"
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
)

// The PR10 gate: the segment layer (builder, input pass-through, panic-
// isolated instrumented hop) must cost under 1.05x the hardwired chain on
// the ingest path. The timed region is exactly that path — push 256
// admitted 256-record batches into the detection queue under the block
// policy and wait for the consumer to drain them — with pipeline assembly
// and teardown outside the timer, so the ratio compares steady-state
// ingest, not construction.
//
// The GC is disabled during the op and run between iterations instead:
// both sides allocate identically (~14 MB of queue copies and balancer
// appends per op), but the pacer reacts to the segment pipeline's few
// extra live objects by rescheduling collections mid-op, which swamps the
// nanosecond-scale quantity under test with up to 25% of runtime noise.
// Pinning the GC makes the comparison deterministic; a full-queue drop
// loop would be stable too, but it measures only the drop fast path
// instead of the path production batches take.

const benchBatchesPerOp = 256 // block policy: every batch is admitted

func benchBatch() []netflow.Record {
	gen := synth.NewGenerator(segProfile())
	var flows []synth.Flow
	for m := int64(0); len(flows) < 256; m++ {
		flows = gen.GenerateMinute(segStart+m, flows)
	}
	return synth.Records(flows)[:256]
}

func benchPipeConfig() ixpsim.PipelineConfig {
	return ixpsim.PipelineConfig{
		Window:     24 * time.Hour,
		QueueCap:   64,
		DropPolicy: netflow.Block,
		Clock:      func() int64 { return segStart * 60 },
	}
}

func BenchmarkHandoffHardwired(b *testing.B) {
	prev := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(prev)
	recs := benchBatch()
	want := uint64(benchBatchesPerOp * len(recs))
	b.SetBytes(int64(want))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		runtime.GC()
		pipe := ixpsim.NewPipeline(benchPipeConfig())
		pipe.Start(context.Background())
		b.StartTimer()
		for j := 0; j < benchBatchesPerOp; j++ {
			pipe.EmitBatch(recs)
		}
		for pipe.Ingested() < want {
			runtime.Gosched()
		}
		b.StopTimer()
		pipe.Stop()
		b.StartTimer()
	}
}

func BenchmarkHandoffSegment(b *testing.B) {
	prev := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(prev)
	cfg := &Config{Name: "bench", Pipeline: []SegmentConfig{
		{Kind: "sflow"},
		{Kind: "scrubber", Params: map[string]any{"drop-policy": "block"}},
	}}
	env := Env{Clock: func() int64 { return segStart * 60 }, ListenPacket: chaosListen}
	recs := benchBatch()
	want := uint64(benchBatchesPerOp * len(recs))
	b.SetBytes(int64(want))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		runtime.GC()
		p, err := New(env, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Start(context.Background()); err != nil {
			b.Fatal(err)
		}
		pipe := p.Scrubber()
		b.StartTimer()
		for j := 0; j < benchBatchesPerOp; j++ {
			p.Feed(recs)
		}
		for pipe.Ingested() < want {
			runtime.Gosched()
		}
		b.StopTimer()
		if err := p.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}
