package registry

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/balance"
	"github.com/ixp-scrubber/ixpscrubber/internal/core"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedClock returns a deterministic clock for manifest stamps.
func fixedClock(unix int64) func() time.Time {
	return func() time.Time { return time.Unix(unix, 0).UTC() }
}

// trainScrubber trains one small scrubber on a balanced synthetic corpus.
func trainScrubber(tb testing.TB, seed uint64) *core.Scrubber {
	tb.Helper()
	p := synth.ProfileUS1()
	p.Seed = seed
	g := synth.NewGenerator(p)
	flows := g.Generate(0, 90)
	bal, _ := balance.Flows(seed, flows)
	vectors := make([]string, len(bal))
	for i := range bal {
		vectors[i] = bal[i].Vector
	}
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	s := core.New(cfg)
	if err := s.TrainFlows(synth.Records(bal), vectors); err != nil {
		tb.Fatal(err)
	}
	return s
}

// trainedBundle trains one small scrubber and serializes it.
func trainedBundle(tb testing.TB, seed uint64) ([]byte, *core.Scrubber) {
	tb.Helper()
	s := trainScrubber(tb, seed)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes(), s
}

func openTest(t *testing.T, clockUnix int64) *Registry {
	t.Helper()
	r, err := Open(t.TempDir(), Options{Clock: fixedClock(clockUnix)})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestPublishPromoteChampion(t *testing.T) {
	r := openTest(t, 1700000000)
	ctx := context.Background()
	bundle, _ := trainedBundle(t, 1)

	m, err := r.Publish(ctx, bundle, Meta{TrainRecords: 100})
	if err != nil {
		t.Fatal(err)
	}
	if m.Seq != 1 || m.Kind != core.BundleFull || m.Source != SourceLocal {
		t.Fatalf("manifest: %+v", m)
	}
	if m.ID != BundleID(bundle) {
		t.Fatalf("id %s != BundleID %s", m.ID, BundleID(bundle))
	}

	// Idempotent: same bytes, same manifest, no new seq.
	m2, err := r.Publish(ctx, bundle, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Seq != m.Seq || m2.ID != m.ID {
		t.Fatalf("re-publish changed manifest: %+v vs %+v", m2, m)
	}

	// No champion yet: fallback serves the only bundle.
	cm, cb, err := r.Champion()
	if err != nil {
		t.Fatal(err)
	}
	if cm.ID != m.ID || !bytes.Equal(cb, bundle) {
		t.Fatal("fallback champion mismatch")
	}

	if err := r.Promote(ctx, m.ID); err != nil {
		t.Fatal(err)
	}
	cm, _, err = r.Champion()
	if err != nil {
		t.Fatal(err)
	}
	if cm.ID != m.ID {
		t.Fatalf("champion %s != %s", cm.ID, m.ID)
	}

	// Promoting an unknown id is refused.
	if err := r.Promote(ctx, "deadbeefdeadbeef"); err == nil {
		t.Fatal("promoted unknown id")
	}
}

func TestPublishSequenceAndReopen(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	r, err := Open(dir, Options{Clock: fixedClock(100)})
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := trainedBundle(t, 1)
	b2, _ := trainedBundle(t, 2)
	m1, err := r.Publish(ctx, b1, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := r.Publish(ctx, b2, Meta{Parent: m1.ID})
	if err != nil {
		t.Fatal(err)
	}
	if m1.Seq != 1 || m2.Seq != 2 {
		t.Fatalf("seqs %d, %d", m1.Seq, m2.Seq)
	}

	// Reopen resumes the counter.
	r2, err := Open(dir, Options{Clock: fixedClock(200)})
	if err != nil {
		t.Fatal(err)
	}
	b3, _ := trainedBundle(t, 3)
	m3, err := r2.Publish(ctx, b3, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	if m3.Seq != 3 {
		t.Fatalf("seq after reopen = %d, want 3", m3.Seq)
	}
	list := r2.List()
	if len(list) != 3 || list[0].Seq != 1 || list[2].Seq != 3 {
		t.Fatalf("list: %+v", list)
	}
}

func TestChampionFallsBackPastCorruption(t *testing.T) {
	r := openTest(t, 100)
	ctx := context.Background()
	b1, _ := trainedBundle(t, 1)
	b2, _ := trainedBundle(t, 2)
	m1, _ := r.Publish(ctx, b1, Meta{})
	m2, _ := r.Publish(ctx, b2, Meta{})
	if err := r.Promote(ctx, m2.ID); err != nil {
		t.Fatal(err)
	}

	// Corrupt the promoted bundle: checksum check must reject it and the
	// fallback must land on the older, intact model.
	if err := os.WriteFile(r.bundlePath(m2.ID), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	cm, cb, err := r.Champion()
	if err != nil {
		t.Fatal(err)
	}
	if cm.ID != m1.ID || !bytes.Equal(cb, b1) {
		t.Fatalf("fallback served %s, want %s", cm.ID, m1.ID)
	}

	// A torn (half-written) manifest is skipped by List, not fatal.
	torn, err := EncodeManifest(m2)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(r.manifestPath(m2.ID), torn[:len(torn)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	invalid := 0
	r.Metrics = &Metrics{InvalidManifests: func() { invalid++ }}
	list := r.List()
	if len(list) != 1 || list[0].ID != m1.ID {
		t.Fatalf("list with torn manifest: %+v", list)
	}
	if invalid == 0 {
		t.Fatal("torn manifest not counted")
	}
}

func TestGC(t *testing.T) {
	r := openTest(t, 100)
	ctx := context.Background()
	var ids []string
	for seed := uint64(1); seed <= 4; seed++ {
		b, _ := trainedBundle(t, seed)
		m, err := r.Publish(ctx, b, Meta{Pinned: seed == 1})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, m.ID)
	}
	if err := r.Promote(ctx, ids[1]); err != nil { // champion = seq 2
		t.Fatal(err)
	}
	// keep=1 → survivors: pinned seq1, champion seq2, newest unpinned seq4.
	removed := r.GC(1)
	if removed != 1 {
		t.Fatalf("removed %d, want 1", removed)
	}
	left := map[string]bool{}
	for _, m := range r.List() {
		left[m.ID] = true
	}
	if !left[ids[0]] || !left[ids[1]] || left[ids[2]] || !left[ids[3]] {
		t.Fatalf("survivors: %v", left)
	}

	// Orphan bundle (no manifest) is swept.
	orphan := filepath.Join(r.Dir(), "feedfacefeedface.bundle.json")
	if err := os.WriteFile(orphan, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	r.GC(10)
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphan bundle survived GC")
	}
}

func TestExportImportClassifier(t *testing.T) {
	src := openTest(t, 100)
	dst := openTest(t, 200)
	ctx := context.Background()
	bundle, s := trainedBundle(t, 1)
	m, err := src.Publish(ctx, bundle, Meta{EncoderFingerprint: s.Encoder().Fingerprint()})
	if err != nil {
		t.Fatal(err)
	}

	exported, err := src.ExportClassifier(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	info, err := core.InspectBundle(exported)
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != core.BundleClassifierOnly {
		t.Fatalf("export kind %s", info.Kind)
	}

	// Full bundles are refused on import.
	if _, err := dst.ImportClassifier(ctx, bundle, Meta{}); err == nil {
		t.Fatal("imported a full bundle")
	}

	im, err := dst.ImportClassifier(ctx, exported, Meta{Parent: m.ID})
	if err != nil {
		t.Fatal(err)
	}
	if im.Source != SourceImported || im.Kind != core.BundleClassifierOnly {
		t.Fatalf("import manifest: %+v", im)
	}

	// The imported scrubber refuses to predict unbound, then matches the
	// source exactly once re-bound to the source's encoder.
	_, loaded, err := dst.LoadScrubber(im.ID)
	if err != nil {
		t.Fatal(err)
	}
	p := synth.ProfileUS1()
	p.Seed = 42
	g := synth.NewGenerator(p)
	flows := g.Generate(0, 30)
	bal, _ := balance.Flows(42, flows)
	vecs := make([]string, len(bal))
	for i := range bal {
		vecs[i] = bal[i].Vector
	}
	aggs := s.Aggregate(synth.Records(bal), vecs)
	if _, err := loaded.Predict(aggs); err == nil {
		t.Fatal("unbound import predicted")
	}
	want, err := s.Predict(aggs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.WithEncoder(s.Encoder()).Predict(aggs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("aggregate %d: %d != %d after export/import", i, got[i], want[i])
		}
	}
}

// TestManifestGolden locks the on-disk manifest JSON format. A diff here
// means the schema changed: bump SchemaVersion and regenerate deliberately
// with -update.
func TestManifestGolden(t *testing.T) {
	m := Manifest{
		SchemaVersion:      SchemaVersion,
		ID:                 "0123456789abcdef",
		Checksum:           "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef",
		Seq:                7,
		CreatedUnix:        1700000000,
		Kind:               core.BundleFull,
		Model:              "XGB",
		TrainFromUnix:      1699996400,
		TrainToUnix:        1700000000,
		TrainRecords:       123456,
		EncoderFingerprint: "00c0ffee00c0ffee",
		Source:             SourceLocal,
		Parent:             "fedcba9876543210",
		Pinned:             true,
		Notes:              "golden fixture",
	}
	got, err := EncodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "manifest.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("manifest format drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// The encoding itself round-trips.
	var back Manifest
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatal(err)
	}
	if back != m {
		t.Errorf("round trip: %+v != %+v", back, m)
	}
}

func TestDeterministicManifestBytes(t *testing.T) {
	// Two registries fed the same bundle under the same virtual clock must
	// produce byte-identical manifests — the property the chaos harness's
	// determinism checks lean on.
	ctx := context.Background()
	bundle, _ := trainedBundle(t, 1)
	var files [2][]byte
	for i := range files {
		r := openTest(t, 555)
		m, err := r.Publish(ctx, bundle, Meta{TrainRecords: 9, TrainFromUnix: 1, TrainToUnix: 2})
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(r.manifestPath(m.ID))
		if err != nil {
			t.Fatal(err)
		}
		files[i] = data
	}
	if !bytes.Equal(files[0], files[1]) {
		t.Fatalf("manifests differ:\n%s\n%s", files[0], files[1])
	}
}

func TestPublishRejectsGarbage(t *testing.T) {
	r := openTest(t, 100)
	failures := 0
	r.Metrics = &Metrics{PublishFailures: func() { failures++ }}
	if _, err := r.Publish(context.Background(), []byte("not a bundle"), Meta{}); err == nil {
		t.Fatal("garbage published")
	}
	if failures != 1 {
		t.Fatalf("failures = %d", failures)
	}
}

// BenchmarkPublish measures a full publish cycle: hash + bundle write +
// manifest commit (files are uncommitted between iterations so every pass
// takes the non-idempotent path).
func BenchmarkPublish(b *testing.B) {
	bundle, _ := trainedBundle(b, 1)
	r, err := Open(b.TempDir(), Options{Clock: fixedClock(100)})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	id := BundleID(bundle)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Publish(ctx, bundle, Meta{}); err != nil {
			b.Fatal(err)
		}
		os.Remove(r.manifestPath(id))
		os.Remove(r.bundlePath(id))
	}
}
