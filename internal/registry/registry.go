// Package registry stores immutable, versioned model bundles on disk — the
// model lifecycle backbone (§5's drift/transfer story made operational).
//
// Layout under the registry directory:
//
//	<id>.bundle.json    the serialized core bundle (content-addressed)
//	<id>.manifest.json  metadata: seq, train window, kind, checksum
//	CHAMPION            the id of the currently promoted model + "\n"
//
// The id is the first 16 hex characters of the bundle's SHA-256, so a
// bundle can never change under its name and re-publishing identical bytes
// is a no-op. Every write goes through the same temp-file+rename protocol
// as the ACL writer (shared acl.Writer), so a crash or torn write can leave
// at worst an orphan bundle or a garbage temp file — never a manifest that
// points at missing or truncated data. The manifest rename is the commit
// point: a bundle without a manifest is invisible garbage that GC sweeps.
//
// Three lifecycle operations: Publish (a training round produced a new
// model), Promote (flip the CHAMPION pointer; the serving path picks it up
// via an atomic.Pointer hot swap with no ingest pause), and
// ExportClassifier/ImportClassifier (geographic transfer of Fig. 12 —
// trees travel, the WoE table stays local).
package registry

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/ixp-scrubber/ixpscrubber/internal/acl"
	"github.com/ixp-scrubber/ixpscrubber/internal/core"
)

// SchemaVersion is the manifest JSON schema version. Bump deliberately;
// the golden-file test locks the serialized form.
const SchemaVersion = 1

// championFile is the promotion pointer filename.
const championFile = "CHAMPION"

// Bundle provenance values for Manifest.Source.
const (
	SourceLocal    = "local"    // trained at this vantage point
	SourceImported = "imported" // classifier-only transfer from elsewhere
)

// Manifest is the versioned metadata of one published bundle. It is the
// registry's on-disk contract: fields are append-only and the golden test
// locks the encoding.
type Manifest struct {
	SchemaVersion int    `json:"schema_version"`
	ID            string `json:"id"`
	Checksum      string `json:"sha256"`
	Seq           uint64 `json:"seq"`
	CreatedUnix   int64  `json:"created_unix"`
	Kind          string `json:"kind"`
	Model         string `json:"model"`
	// Train-window metadata: what data the model saw, so drift references
	// and retrain decisions can reason about model age.
	TrainFromUnix int64 `json:"train_from_unix,omitempty"`
	TrainToUnix   int64 `json:"train_to_unix,omitempty"`
	TrainRecords  int   `json:"train_records,omitempty"`
	// EncoderFingerprint digests the WoE counts the model was trained
	// against (hex of woe.Encoder.Fingerprint). For classifier-only
	// bundles it names the encoder left behind at the exporter, letting an
	// importer detect accidental same-site reimports.
	EncoderFingerprint string `json:"encoder_fingerprint,omitempty"`
	Source             string `json:"source"`
	Parent             string `json:"parent,omitempty"`
	Pinned             bool   `json:"pinned,omitempty"`
	Notes              string `json:"notes,omitempty"`
}

// Meta carries caller-supplied manifest fields for Publish.
type Meta struct {
	TrainFromUnix      int64
	TrainToUnix        int64
	TrainRecords       int
	EncoderFingerprint uint64
	Source             string // defaults to SourceLocal
	Parent             string // id of the previously serving model, if any
	Pinned             bool   // exempt from GC
	Notes              string
}

// Options configures Open.
type Options struct {
	// FS is the write-path filesystem; nil means the real one. Reads always
	// hit the real disk (fault injection targets writes).
	FS acl.FS
	// Clock stamps CreatedUnix; nil means time.Now. The chaos harness
	// injects its virtual clock here so manifests are bit-deterministic.
	Clock func() time.Time
	Log   *slog.Logger
}

// Metrics are the registry's observable counters. All methods are nil-safe.
type Metrics struct {
	Publishes        func() // successful Publish of a new bundle
	PublishFailures  func() // Publish that returned an error
	Promotions       func() // successful Promote
	GCRemoved        func(n int)
	InvalidManifests func() // manifest skipped during a scan (torn/garbage)
}

func (m *Metrics) publish() {
	if m != nil && m.Publishes != nil {
		m.Publishes()
	}
}
func (m *Metrics) publishFailure() {
	if m != nil && m.PublishFailures != nil {
		m.PublishFailures()
	}
}
func (m *Metrics) promote() {
	if m != nil && m.Promotions != nil {
		m.Promotions()
	}
}
func (m *Metrics) gcRemoved(n int) {
	if m != nil && m.GCRemoved != nil && n > 0 {
		m.GCRemoved(n)
	}
}
func (m *Metrics) invalid() {
	if m != nil && m.InvalidManifests != nil {
		m.InvalidManifests()
	}
}

// Registry is a versioned on-disk model store. Safe for concurrent use.
type Registry struct {
	dir     string
	writer  *acl.Writer
	clock   func() time.Time
	log     *slog.Logger
	Metrics *Metrics

	mu      sync.Mutex
	nextSeq uint64
}

// Open creates the directory if needed and scans existing manifests to
// resume the sequence counter.
func Open(dir string, opts Options) (*Registry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: creating %s: %w", dir, err)
	}
	clock := opts.Clock
	if clock == nil {
		clock = time.Now
	}
	r := &Registry{
		dir:    dir,
		writer: &acl.Writer{FS: opts.FS, Log: opts.Log},
		clock:  clock,
		log:    opts.Log,
	}
	for _, m := range r.List() {
		if m.Seq >= r.nextSeq {
			r.nextSeq = m.Seq
		}
	}
	return r, nil
}

// Dir returns the registry directory.
func (r *Registry) Dir() string { return r.dir }

// Writer exposes the underlying atomic writer so callers can tune retry
// pacing (the chaos harness installs an instant backoff so retries don't
// consume virtual time).
func (r *Registry) Writer() *acl.Writer { return r.writer }

// BundleID derives the content-hash id for bundle bytes.
func BundleID(bundle []byte) string {
	sum := sha256.Sum256(bundle)
	return hex.EncodeToString(sum[:8])
}

func (r *Registry) bundlePath(id string) string {
	return filepath.Join(r.dir, id+".bundle.json")
}
func (r *Registry) manifestPath(id string) string {
	return filepath.Join(r.dir, id+".manifest.json")
}

// EncodeManifest renders a manifest in the canonical on-disk form (indented
// JSON + trailing newline). Exposed for the golden-file format test.
func EncodeManifest(m Manifest) ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Publish stores a bundle and commits its manifest. Identical bundle bytes
// publish to the same id, and re-publishing an already-committed id returns
// the existing manifest unchanged (idempotent, so crash-retry loops are
// safe). The bundle file lands before the manifest: the manifest rename is
// the commit point, and a failure in between leaves only an orphan bundle
// that GC collects.
func (r *Registry) Publish(ctx context.Context, bundle []byte, meta Meta) (Manifest, error) {
	info, err := core.InspectBundle(bundle)
	if err != nil {
		r.Metrics.publishFailure()
		return Manifest{}, fmt.Errorf("registry: rejecting bundle: %w", err)
	}
	sum := sha256.Sum256(bundle)
	id := hex.EncodeToString(sum[:8])

	r.mu.Lock()
	defer r.mu.Unlock()

	if existing, err := r.manifest(id); err == nil {
		return existing, nil // already committed
	}
	source := meta.Source
	if source == "" {
		source = SourceLocal
	}
	var fp string
	if meta.EncoderFingerprint != 0 {
		fp = fmt.Sprintf("%016x", meta.EncoderFingerprint)
	}
	m := Manifest{
		SchemaVersion:      SchemaVersion,
		ID:                 id,
		Checksum:           hex.EncodeToString(sum[:]),
		Seq:                r.nextSeq + 1,
		CreatedUnix:        r.clock().Unix(),
		Kind:               info.Kind,
		Model:              string(info.Model),
		TrainFromUnix:      meta.TrainFromUnix,
		TrainToUnix:        meta.TrainToUnix,
		TrainRecords:       meta.TrainRecords,
		EncoderFingerprint: fp,
		Source:             source,
		Parent:             meta.Parent,
		Pinned:             meta.Pinned,
		Notes:              meta.Notes,
	}
	if err := r.writer.Publish(ctx, r.bundlePath(id), bundle); err != nil {
		r.Metrics.publishFailure()
		return Manifest{}, fmt.Errorf("registry: writing bundle %s: %w", id, err)
	}
	mdata, err := EncodeManifest(m)
	if err != nil {
		r.Metrics.publishFailure()
		return Manifest{}, fmt.Errorf("registry: encoding manifest %s: %w", id, err)
	}
	if err := r.writer.Publish(ctx, r.manifestPath(id), mdata); err != nil {
		r.Metrics.publishFailure()
		return Manifest{}, fmt.Errorf("registry: committing manifest %s: %w", id, err)
	}
	r.nextSeq = m.Seq
	r.Metrics.publish()
	if r.log != nil {
		r.log.Info("registry publish", "id", id, "seq", m.Seq, "kind", m.Kind)
	}
	return m, nil
}

// manifest reads and validates one manifest by id.
func (r *Registry) manifest(id string) (Manifest, error) {
	data, err := os.ReadFile(r.manifestPath(id))
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("registry: manifest %s: %w", id, err)
	}
	if m.SchemaVersion != SchemaVersion {
		return Manifest{}, fmt.Errorf("registry: manifest %s: unsupported schema %d", id, m.SchemaVersion)
	}
	if m.ID != id {
		return Manifest{}, fmt.Errorf("registry: manifest %s names id %s", id, m.ID)
	}
	return m, nil
}

// Get returns the manifest and verified bundle bytes for an id. The bundle
// hash is checked against the manifest checksum, so a corrupted bundle is
// an error, never silently served.
func (r *Registry) Get(id string) (Manifest, []byte, error) {
	m, err := r.manifest(id)
	if err != nil {
		return Manifest{}, nil, err
	}
	bundle, err := os.ReadFile(r.bundlePath(id))
	if err != nil {
		return Manifest{}, nil, fmt.Errorf("registry: bundle %s: %w", id, err)
	}
	sum := sha256.Sum256(bundle)
	if hex.EncodeToString(sum[:]) != m.Checksum {
		return Manifest{}, nil, fmt.Errorf("registry: bundle %s fails checksum", id)
	}
	return m, bundle, nil
}

// List returns all valid manifests sorted by ascending Seq. Unparsable or
// schema-mismatched manifests are skipped (and counted), not fatal: a torn
// manifest must never take down the registry scan.
func (r *Registry) List() []Manifest {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return nil
	}
	var out []Manifest
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".manifest.json") || strings.HasPrefix(name, ".tmp.") {
			continue
		}
		id := strings.TrimSuffix(name, ".manifest.json")
		m, err := r.manifest(id)
		if err != nil {
			r.Metrics.invalid()
			if r.log != nil {
				r.log.Warn("registry: skipping invalid manifest", "file", name, "err", err)
			}
			continue
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seq != out[j].Seq {
			return out[i].Seq < out[j].Seq
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Promote flips the CHAMPION pointer to id. The id must name a committed,
// verifiable bundle — promoting garbage is refused up front.
func (r *Registry) Promote(ctx context.Context, id string) error {
	if _, _, err := r.Get(id); err != nil {
		return fmt.Errorf("registry: refusing to promote %s: %w", id, err)
	}
	if err := r.writer.Publish(ctx, filepath.Join(r.dir, championFile), []byte(id+"\n")); err != nil {
		return fmt.Errorf("registry: promoting %s: %w", id, err)
	}
	r.Metrics.promote()
	if r.log != nil {
		r.log.Info("registry promote", "id", id)
	}
	return nil
}

// Champion resolves the currently promoted model: manifest + verified
// bundle. When the pointer is missing, stale or points at corrupt data, it
// falls back to the highest-seq valid full bundle — the last-good model —
// so a torn promotion can degrade but never blind the serving path.
func (r *Registry) Champion() (Manifest, []byte, error) {
	if data, err := os.ReadFile(filepath.Join(r.dir, championFile)); err == nil {
		id := strings.TrimSpace(string(data))
		if m, bundle, err := r.Get(id); err == nil {
			return m, bundle, nil
		} else if r.log != nil {
			r.log.Warn("registry: champion pointer invalid, falling back", "id", id, "err", err)
		}
	}
	// Fallback: newest valid bundle wins.
	list := r.List()
	for i := len(list) - 1; i >= 0; i-- {
		if m, bundle, err := r.Get(list[i].ID); err == nil {
			return m, bundle, nil
		}
	}
	return Manifest{}, nil, fmt.Errorf("registry: no servable model in %s", r.dir)
}

// LoadScrubber materializes the bundle behind an id as a core.Scrubber.
func (r *Registry) LoadScrubber(id string) (Manifest, *core.Scrubber, error) {
	m, bundle, err := r.Get(id)
	if err != nil {
		return Manifest{}, nil, err
	}
	s, err := core.Load(strings.NewReader(string(bundle)))
	if err != nil {
		return Manifest{}, nil, fmt.Errorf("registry: loading %s: %w", id, err)
	}
	return m, s, nil
}

// ExportClassifier re-serializes the bundle behind id without its WoE
// encoder — the Fig. 12 geographic transfer artifact. A bundle that is
// already classifier-only exports as-is.
func (r *Registry) ExportClassifier(id string) ([]byte, error) {
	m, bundle, err := r.Get(id)
	if err != nil {
		return nil, err
	}
	if m.Kind == core.BundleClassifierOnly {
		return bundle, nil
	}
	s, err := core.Load(strings.NewReader(string(bundle)))
	if err != nil {
		return nil, fmt.Errorf("registry: exporting %s: %w", id, err)
	}
	var buf strings.Builder
	if err := s.SaveClassifierOnly(&buf); err != nil {
		return nil, fmt.Errorf("registry: exporting %s: %w", id, err)
	}
	return []byte(buf.String()), nil
}

// ImportClassifier publishes a classifier-only bundle produced elsewhere.
// Full bundles are refused: importing another vantage point's WoE table
// would overwrite local knowledge, the exact thing §6.4 transfer avoids.
func (r *Registry) ImportClassifier(ctx context.Context, bundle []byte, meta Meta) (Manifest, error) {
	info, err := core.InspectBundle(bundle)
	if err != nil {
		return Manifest{}, fmt.Errorf("registry: rejecting import: %w", err)
	}
	if info.Kind != core.BundleClassifierOnly {
		return Manifest{}, fmt.Errorf("registry: refusing to import %s bundle (classifier-only required)", info.Kind)
	}
	if meta.Source == "" {
		meta.Source = SourceImported
	}
	return r.Publish(ctx, bundle, meta)
}

// ChampionID reads the raw promotion pointer, "" if absent. Unlike
// Champion it does not verify the bundle behind it — coordinators use it
// to name the export candidate cheaply; the export itself re-verifies.
func (r *Registry) ChampionID() string { return r.championID() }

// championID reads the raw promotion pointer, "" if absent.
func (r *Registry) championID() string {
	data, err := os.ReadFile(filepath.Join(r.dir, championFile))
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(data))
}

// GC removes old, unpinned, non-champion versions beyond the newest keep,
// plus orphan bundles (content without a committed manifest) and stale temp
// files. Returns the number of versions removed.
func (r *Registry) GC(keep int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	champion := r.championID()
	list := r.List()
	removed := 0
	kept := 0
	for i := len(list) - 1; i >= 0; i-- {
		m := list[i]
		if m.ID == champion || m.Pinned {
			continue
		}
		if kept < keep {
			kept++
			continue
		}
		os.Remove(r.manifestPath(m.ID)) // manifest first: uncommit, then sweep
		os.Remove(r.bundlePath(m.ID))
		removed++
		if r.log != nil {
			r.log.Info("registry gc", "id", m.ID, "seq", m.Seq)
		}
	}
	// Orphans: bundle files whose manifest is gone or never committed.
	valid := make(map[string]bool, len(list))
	for _, m := range r.List() {
		valid[m.ID] = true
	}
	entries, _ := os.ReadDir(r.dir)
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, ".tmp.") {
			os.Remove(filepath.Join(r.dir, name))
			continue
		}
		if id, ok := strings.CutSuffix(name, ".bundle.json"); ok && !valid[id] {
			os.Remove(filepath.Join(r.dir, name))
		}
	}
	r.Metrics.gcRemoved(removed)
	return removed
}
