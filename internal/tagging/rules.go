package tagging

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
)

// Status is the curation state a network operator assigns to a rule in the
// review UI (Fig. 6).
type Status string

// Curation states.
const (
	StatusStaging Status = "staging" // mined, awaiting review
	StatusAccept  Status = "accept"  // confirmed: tag/filter traffic
	StatusDecline Status = "decline" // rejected: never shown again
)

// Rule is one tagging rule: an antecedent of header items implying the
// {blackhole} consequent.
type Rule struct {
	// ID is a stable short hash of the antecedent.
	ID string
	// Antecedent is the sorted item set.
	Antecedent []Item
	// Confidence is P(blackhole | antecedent).
	Confidence float64
	// Support is the antecedent's share of all transactions.
	Support float64
	// Status is the curation state.
	Status Status
	// Notes carries operator documentation.
	Notes string
}

// String renders the rule in A -> {blackhole} form.
func (r *Rule) String() string {
	return fmt.Sprintf("%s -> {blackhole} (c=%.3f, s=%.5f, %s)",
		ItemsString(r.Antecedent), r.Confidence, r.Support, r.Status)
}

// Match reports whether the rule's antecedent matches the record.
func (r *Rule) Match(rec *netflow.Record) bool { return MatchRecord(r.Antecedent, rec) }

// ruleID derives the stable ID from the antecedent.
func ruleID(items []Item) string {
	h := sha256.New()
	for _, it := range items {
		h.Write([]byte{byte(it >> 24), byte(it >> 16), byte(it >> 8), byte(it)})
	}
	return hex.EncodeToString(h.Sum(nil))[:8]
}

// MineOptions parameterizes rule mining.
type MineOptions struct {
	// MinConfidence is the FP-Growth rule confidence floor (paper: 0.8).
	MinConfidence float64
	// MinSupportCount is the absolute itemset support floor.
	MinSupportCount int
	// LossConfidence/LossSupport are the Lc/Ls thresholds of Algorithm 1
	// (paper: 0.01 after the Appendix A sensitivity study).
	LossConfidence float64
	LossSupport    float64
	// Workers bounds the FP-Growth worker pool: 0 sizes from GOMAXPROCS,
	// 1 forces the serial path. Mined rules are identical at every value.
	Workers int
}

// DefaultMineOptions returns the paper's operating point.
func DefaultMineOptions() MineOptions {
	return MineOptions{
		MinConfidence:   0.8,
		MinSupportCount: 20,
		LossConfidence:  0.01,
		LossSupport:     0.01,
	}
}

// MiningReport describes the rule funnel of §5.1.1: all mined association
// rules, the subset whose consequent is {blackhole}, and the set remaining
// after Algorithm 1.
type MiningReport struct {
	Transactions        int
	FrequentItemsets    int
	RulesAllConsequents int
	RulesBlackhole      int
	RulesMinimized      int
}

// Mine runs the full Step 1 pipeline over a balanced record set: itemize,
// mine frequent itemsets, generate rules, filter to the {blackhole}
// consequent, and minimize with Algorithm 1. Returned rules are in staging
// and sorted by descending support.
func Mine(records []netflow.Record, opts MineOptions) ([]Rule, MiningReport) {
	txs := make([]Transaction, len(records))
	var buf []Item
	for i := range records {
		items, bh := Itemize(&records[i], buf)
		txs[i] = Transaction{Items: append([]Item(nil), items...), Blackholed: bh}
	}
	return MineTransactions(txs, opts)
}

// MineTransactions is Mine for pre-itemized transactions.
func MineTransactions(txs []Transaction, opts MineOptions) ([]Rule, MiningReport) {
	rep := MiningReport{Transactions: len(txs)}
	if len(txs) == 0 {
		return nil, rep
	}
	itemsets := MineFrequentWorkers(txs, opts.MinSupportCount, opts.Workers)
	rep.FrequentItemsets = len(itemsets)

	// Index itemsets for consequent enumeration.
	bySig := make(map[string]*Itemset, len(itemsets))
	sig := func(items []Item) string {
		b := make([]byte, 0, len(items)*4)
		for _, it := range items {
			b = append(b, byte(it>>24), byte(it>>16), byte(it>>8), byte(it))
		}
		return string(b)
	}
	for i := range itemsets {
		bySig[sig(itemsets[i].Items)] = &itemsets[i]
	}

	n := float64(len(txs))
	var rules []Rule
	for i := range itemsets {
		s := &itemsets[i]
		// Rule with the {blackhole} consequent.
		conf := float64(s.BHCount) / float64(s.Count)
		if conf >= opts.MinConfidence {
			rep.RulesBlackhole++
			rules = append(rules, Rule{
				ID:         ruleID(s.Items),
				Antecedent: s.Items,
				Confidence: conf,
				Support:    float64(s.Count) / n,
				Status:     StatusStaging,
			})
		}
		// Rules with single-item header consequents (counted for the §5.1.1
		// funnel, then discarded by the consequent filter).
		if len(s.Items) >= 2 {
			ante := make([]Item, 0, len(s.Items)-1)
			for j := range s.Items {
				ante = ante[:0]
				ante = append(ante, s.Items[:j]...)
				ante = append(ante, s.Items[j+1:]...)
				a, ok := bySig[sig(ante)]
				if !ok {
					continue
				}
				if float64(s.Count)/float64(a.Count) >= opts.MinConfidence {
					rep.RulesAllConsequents++
				}
			}
		}
	}
	rep.RulesAllConsequents += rep.RulesBlackhole

	rules = MinimizeRules(rules, opts.LossConfidence, opts.LossSupport)
	rep.RulesMinimized = len(rules)
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Support != rules[j].Support {
			return rules[i].Support > rules[j].Support
		}
		return rules[i].ID < rules[j].ID
	})
	return rules, rep
}

// MinimizeRules implements Algorithm 1: repeatedly drop a rule whose
// antecedent is a proper subset of another rule's antecedent when the loss
// in confidence and support stays below Lc/Ls, until a fixpoint.
func MinimizeRules(rules []Rule, lc, ls float64) []Rule {
	out := append([]Rule(nil), rules...)
	for {
		deleted := make([]bool, len(out))
		any := false
		for i := range out {
			if deleted[i] {
				continue
			}
			for j := range out {
				if i == j || deleted[j] {
					continue
				}
				if !isProperSubset(out[i].Antecedent, out[j].Antecedent) {
					continue
				}
				if out[i].Confidence-out[j].Confidence < lc && out[i].Support-out[j].Support < ls {
					deleted[i] = true
					any = true
					break
				}
			}
		}
		if !any {
			return out
		}
		kept := out[:0]
		for i := range out {
			if !deleted[i] {
				kept = append(kept, out[i])
			}
		}
		out = kept
	}
}

// isProperSubset reports a ⊂ b for sorted item slices.
func isProperSubset(a, b []Item) bool {
	if len(a) >= len(b) {
		return false
	}
	i := 0
	for _, x := range b {
		if i < len(a) && a[i] == x {
			i++
		}
	}
	return i == len(a)
}

// RuleSet is a curated collection of rules with stable identity, supporting
// the grow-over-time workflow: freshly mined rules merge in as staging,
// declined rules never reappear.
type RuleSet struct {
	rules map[string]*Rule
}

// NewRuleSet builds a set from initial rules.
func NewRuleSet(rules []Rule) *RuleSet {
	s := &RuleSet{rules: make(map[string]*Rule, len(rules))}
	for i := range rules {
		r := rules[i]
		s.rules[r.ID] = &r
	}
	return s
}

// Merge folds freshly mined rules in: unknown rules enter as staging; known
// rules refresh confidence/support but keep their curation state.
func (s *RuleSet) Merge(mined []Rule) (added int) {
	for i := range mined {
		m := mined[i]
		if ex, ok := s.rules[m.ID]; ok {
			ex.Confidence = m.Confidence
			ex.Support = m.Support
			continue
		}
		m.Status = StatusStaging
		s.rules[m.ID] = &m
		added++
	}
	return added
}

// SetStatus curates one rule.
func (s *RuleSet) SetStatus(id string, st Status, notes string) error {
	r, ok := s.rules[id]
	if !ok {
		return fmt.Errorf("tagging: unknown rule %q", id)
	}
	r.Status = st
	if notes != "" {
		r.Notes = notes
	}
	return nil
}

// Rules returns all rules sorted by descending support.
func (s *RuleSet) Rules() []Rule {
	out := make([]Rule, 0, len(s.rules))
	for _, r := range s.rules {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Accepted returns the accepted rules only — the set used for tagging and
// ACL generation.
func (s *RuleSet) Accepted() []Rule {
	var out []Rule
	for _, r := range s.Rules() {
		if r.Status == StatusAccept {
			out = append(out, r)
		}
	}
	return out
}

// AcceptAll accepts every staging rule; used by the scripted operator
// policy when thresholds have pre-filtered rules.
func (s *RuleSet) AcceptAll() {
	for _, r := range s.rules {
		if r.Status == StatusStaging {
			r.Status = StatusAccept
		}
	}
}

// AcceptPolicy is a scripted stand-in for the operator review of §5.1.2/
// §5.1.3: it encodes the judgments a network engineer applies in the rule
// UI. Rules failing the policy are declined.
type AcceptPolicy struct {
	// MinConfidence is the acceptance floor; the released DE-CIX rule list
	// ships rules with confidence > 0.9.
	MinConfidence float64
	// RequireAnchor declines rules without a concrete traffic anchor: a
	// literal (non-sprayed) source service port, the fragment flag, or a
	// non-TCP/UDP protocol. An unanchored rule like {protocol=UDP} would
	// drop a quarter of the Internet — exactly what an operator declines
	// on sight.
	RequireAnchor bool
}

// DefaultAcceptPolicy mirrors the released rule list's operating point.
func DefaultAcceptPolicy() AcceptPolicy {
	return AcceptPolicy{MinConfidence: 0.9, RequireAnchor: true}
}

// Anchored reports whether the rule has a concrete traffic anchor per the
// policy's definition.
func Anchored(r *Rule) bool {
	for _, it := range r.Antecedent {
		switch it.Field() {
		case FieldSrcPort:
			if it.Value() != PortOther {
				return true
			}
		case FieldFragment:
			return true
		case FieldProtocol:
			if v := it.Value(); v != 6 && v != 17 {
				return true // exotic protocol (GRE, ESP, ...) is a signature
			}
		}
	}
	return false
}

// Apply curates all staged rules: accept those passing the policy, decline
// the rest. Returns (accepted, declined) counts.
func (s *RuleSet) Apply(p AcceptPolicy) (accepted, declined int) {
	for _, r := range s.rules {
		if r.Status != StatusStaging {
			continue
		}
		if r.Confidence >= p.MinConfidence && (!p.RequireAnchor || Anchored(r)) {
			r.Status = StatusAccept
			accepted++
		} else {
			r.Status = StatusDecline
			declined++
		}
	}
	return accepted, declined
}

// Len returns the number of rules including declined ones.
func (s *RuleSet) Len() int { return len(s.rules) }
