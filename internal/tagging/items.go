// Package tagging implements Step 1 of the IXP Scrubber model (§5.1):
// association rule mining over discretized flow headers with the
// {blackhole} consequent, FP-Growth frequent itemset mining, the rule set
// minimization of Algorithm 1, operator curation states, and the JSON
// import/export format of the released rule list.
package tagging

import (
	"fmt"
	"sort"
	"strings"

	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
)

// Field identifies one discretized header attribute.
type Field uint8

// Discretized header fields, the antecedent vocabulary of tagging rules.
const (
	FieldProtocol Field = iota + 1
	FieldSrcPort
	FieldDstPort
	FieldSize
	FieldFragment
	fieldLabel // internal: the {blackhole} consequent
)

// String returns the column name used in the rule UI and JSON export.
func (f Field) String() string {
	switch f {
	case FieldProtocol:
		return "protocol"
	case FieldSrcPort:
		return "port_src"
	case FieldDstPort:
		return "port_dst"
	case FieldSize:
		return "packet_size"
	case FieldFragment:
		return "fragment"
	case fieldLabel:
		return "blackhole"
	default:
		return fmt.Sprintf("field(%d)", uint8(f))
	}
}

// Item is one (field, value) pair, packed for use as a map key and cheap
// comparison. The top byte is the Field, the low 24 bits the value.
type Item uint32

// NewItem packs a field and value.
func NewItem(f Field, v uint32) Item { return Item(uint32(f)<<24 | v&0xFFFFFF) }

// Field returns the item's field.
func (it Item) Field() Field { return Field(it >> 24) }

// Value returns the item's 24-bit value.
func (it Item) Value() uint32 { return uint32(it) & 0xFFFFFF }

// Port classes: ports outside the retained set collapse into one class, the
// analog of the released rules' negated port sets ("~{0,17,19,...}"): the
// traffic is sprayed over arbitrary, unpopular ports.
const (
	// PortOther is the value of a port item for an unretained port.
	PortOther uint32 = 0xFFFFFE
)

// SizeBinWidth is the width of packet size bins in bytes; the released
// rules use intervals like "(400,500]".
const SizeBinWidth = 100

// labelItem is the consequent item.
const labelItem = Item(uint32(fieldLabel)<<24 | 1)

// retainedPorts is the set of port values kept literal during
// discretization: well-known service ports plus the DDoS catalog ports.
var retainedPorts = func() map[uint16]bool {
	m := make(map[uint16]bool)
	for p := uint16(0); p < 1024; p++ {
		m[p] = true
	}
	for _, p := range []uint16{1194, 1434, 1900, 1935, 2048, 3283, 3389, 3702,
		4500, 5060, 8080, 8443, 10001, 11211, 27015} {
		m[p] = true
	}
	return m
}()

// portValue discretizes a port.
func portValue(p uint16) uint32 {
	if retainedPorts[p] {
		return uint32(p)
	}
	return PortOther
}

// PortValue discretizes a port: retained ports stay literal, everything
// else collapses into PortOther. Exported for the compiled mitigation fast
// path (internal/dropper), which must discretize bit-identically to the
// rule interpreter.
func PortValue(p uint16) uint32 { return portValue(p) }

// SizeValue is the integer mean packet size that SizeBin bins: negative
// sizes clamp to 0, everything else truncates toward zero. The dropper's
// packet-size range table is keyed on this value so both paths share one
// float64→uint32 conversion; any drift here breaks their bit-for-bit
// equivalence.
func SizeValue(meanSize float64) uint32 {
	if meanSize < 0 {
		return 0
	}
	return uint32(meanSize)
}

// SizeBin returns the packet size bin index of a mean packet size.
func SizeBin(meanSize float64) uint32 { return sizeBin(meanSize) }

// sizeBin returns the packet size bin index of a mean packet size.
func sizeBin(meanSize float64) uint32 {
	b := SizeValue(meanSize) / SizeBinWidth
	if b > 15 {
		b = 15
	}
	return b
}

// SizeBinLabel formats a bin as the half-open interval used by the UI.
func SizeBinLabel(bin uint32) string {
	lo := bin * SizeBinWidth
	hi := lo + SizeBinWidth
	if bin == 15 {
		return fmt.Sprintf("(%d,inf)", lo)
	}
	return fmt.Sprintf("(%d,%d]", lo, hi)
}

// Itemize discretizes one flow record into its antecedent items. The item
// slice is sorted and deduplicated; the label is returned separately.
func Itemize(r *netflow.Record, dst []Item) ([]Item, bool) {
	dst = dst[:0]
	dst = append(dst, NewItem(FieldProtocol, uint32(r.Protocol)))
	if r.Fragment {
		dst = append(dst, NewItem(FieldFragment, 1))
	} else {
		dst = append(dst,
			NewItem(FieldSrcPort, portValue(r.SrcPort)),
			NewItem(FieldDstPort, portValue(r.DstPort)),
		)
	}
	dst = append(dst, NewItem(FieldSize, sizeBin(r.MeanPacketSize())))
	sort.Slice(dst, func(i, j int) bool { return dst[i] < dst[j] })
	return dst, r.Blackholed
}

// ItemString formats one item for display (e.g. "port_src=123",
// "packet_size=(400,500]", "port_dst=~popular").
func ItemString(it Item) string {
	switch it.Field() {
	case FieldSize:
		return fmt.Sprintf("packet_size=%s", SizeBinLabel(it.Value()))
	case FieldSrcPort, FieldDstPort:
		if it.Value() == PortOther {
			return fmt.Sprintf("%s=~popular", it.Field())
		}
		return fmt.Sprintf("%s=%d", it.Field(), it.Value())
	case FieldFragment:
		return "fragment=true"
	default:
		return fmt.Sprintf("%s=%d", it.Field(), it.Value())
	}
}

// ItemsString joins an antecedent for display.
func ItemsString(items []Item) string {
	parts := make([]string, len(items))
	for i, it := range items {
		parts[i] = ItemString(it)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// MatchRecord reports whether every item of the antecedent holds for the
// record's discretization.
func MatchRecord(antecedent []Item, r *netflow.Record) bool {
	for _, it := range antecedent {
		switch it.Field() {
		case FieldProtocol:
			if uint32(r.Protocol) != it.Value() {
				return false
			}
		case FieldSrcPort:
			if r.Fragment || portValue(r.SrcPort) != it.Value() {
				return false
			}
		case FieldDstPort:
			if r.Fragment || portValue(r.DstPort) != it.Value() {
				return false
			}
		case FieldSize:
			if sizeBin(r.MeanPacketSize()) != it.Value() {
				return false
			}
		case FieldFragment:
			if !r.Fragment {
				return false
			}
		default:
			return false
		}
	}
	return true
}
