package tagging

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/ixp-scrubber/ixpscrubber/internal/balance"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
)

// minedTxs itemizes a seeded synthetic traffic window for mining tests.
func minedTxs(seed uint64) []Transaction {
	p := synth.ProfileUS1()
	p.Seed = seed
	g := synth.NewGenerator(p)
	flows := g.Generate(0, 240)
	balanced, _ := balance.Flows(seed, flows)
	records := synth.Records(balanced)
	txs := make([]Transaction, len(records))
	var buf []Item
	for i := range records {
		items, bh := Itemize(&records[i], buf)
		txs[i] = Transaction{Items: append([]Item(nil), items...), Blackholed: bh}
	}
	return txs
}

// TestMineFrequentWorkersIdentical proves the per-header-item fan-out of
// FP-Growth emits the exact itemset sequence of the serial DFS: same sets,
// same counts, same order, at every pool size and seed.
func TestMineFrequentWorkersIdentical(t *testing.T) {
	for _, seed := range []uint64{7, 8, 9} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			txs := minedTxs(seed)
			ref := MineFrequentWorkers(txs, 20, 1)
			if len(ref) == 0 {
				t.Fatal("serial mining returned nothing; test corpus too small")
			}
			for _, workers := range []int{2, 8} {
				got := MineFrequentWorkers(txs, 20, workers)
				if !reflect.DeepEqual(got, ref) {
					t.Fatalf("workers=%d: itemsets differ from serial (%d vs %d sets)",
						workers, len(got), len(ref))
				}
			}
		})
	}
}

// TestMineWorkersIdentical checks the full Step-1 pipeline (mining, rule
// generation, Algorithm-1 minimization) end to end across pool sizes.
func TestMineWorkersIdentical(t *testing.T) {
	for _, seed := range []uint64{7, 8, 9} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			txs := minedTxs(seed)
			refOpts := DefaultMineOptions()
			refOpts.Workers = 1
			refRules, refRep := MineTransactions(txs, refOpts)
			if len(refRules) == 0 {
				t.Fatal("serial mining produced no rules")
			}
			for _, workers := range []int{2, 8} {
				opts := DefaultMineOptions()
				opts.Workers = workers
				rules, rep := MineTransactions(txs, opts)
				if !reflect.DeepEqual(rules, refRules) {
					t.Fatalf("workers=%d: rules differ from serial", workers)
				}
				if rep != refRep {
					t.Fatalf("workers=%d: mining report differs: %+v vs %+v", workers, rep, refRep)
				}
			}
		})
	}
}

// BenchmarkMineFrequentWorkers measures FP-Growth at explicit pool sizes.
func BenchmarkMineFrequentWorkers(b *testing.B) {
	txs := minedTxs(7)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MineFrequentWorkers(txs, 20, workers)
			}
		})
	}
}
