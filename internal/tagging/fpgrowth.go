package tagging

import (
	"sort"

	"github.com/ixp-scrubber/ixpscrubber/internal/par"
)

// Itemset is a frequent itemset with its occurrence counts: Count over all
// transactions and BHCount over blackholed transactions only. Carrying both
// counts through the mining lets rule generation compute the confidence of
// the {blackhole} consequent without a second pass.
type Itemset struct {
	Items   []Item
	Count   int
	BHCount int
}

// fpNode is one node of the FP-tree.
type fpNode struct {
	item     Item
	count    int
	bhCount  int
	parent   *fpNode
	children map[Item]*fpNode
	next     *fpNode // header table chain
}

type headerEntry struct {
	item  Item
	count int
	head  *fpNode
}

type fpTree struct {
	root    *fpNode
	headers []headerEntry // ascending by count
	index   map[Item]int  // item -> headers position
}

func newFPTree() *fpTree {
	return &fpTree{
		root:  &fpNode{children: make(map[Item]*fpNode)},
		index: make(map[Item]int),
	}
}

// insert adds one transaction (already filtered to frequent items, ordered
// by descending global frequency) with the given weights.
func (t *fpTree) insert(items []Item, count, bhCount int) {
	node := t.root
	for _, it := range items {
		child := node.children[it]
		if child == nil {
			child = &fpNode{item: it, parent: node, children: make(map[Item]*fpNode)}
			node.children[it] = child
			hi := t.index[it]
			child.next = t.headers[hi].head
			t.headers[hi].head = child
		}
		child.count += count
		child.bhCount += bhCount
		node = child
	}
}

// Transaction pairs an itemization with its label.
type Transaction struct {
	Items      []Item
	Blackholed bool
}

// MineFrequent runs FP-Growth over the transactions and returns every
// itemset whose support count is at least minCount, with blackhole
// co-occurrence counts. Identical transactions should be pre-aggregated by
// the caller for speed (see AggregateTransactions); they are also handled
// correctly if not. The worker pool is sized from GOMAXPROCS; use
// MineFrequentWorkers to pin it.
func MineFrequent(txs []Transaction, minCount int) []Itemset {
	return MineFrequentWorkers(txs, minCount, 0)
}

// MineFrequentWorkers is MineFrequent on a bounded worker pool: the
// conditional trees of the top-level header-table items are mined
// concurrently and their itemsets concatenated in header order, which
// reproduces the serial DFS emission order exactly — output is bit-for-bit
// identical for every worker count. workers <= 0 sizes from GOMAXPROCS;
// workers == 1 is the serial path.
func MineFrequentWorkers(txs []Transaction, minCount, workers int) []Itemset {
	if minCount < 1 {
		minCount = 1
	}
	// Global item frequencies.
	freq := make(map[Item]int)
	for i := range txs {
		for _, it := range txs[i].Items {
			freq[it]++
		}
	}
	tree := buildTree(txs, freq, minCount)
	w := par.Workers(workers)
	if w <= 1 || len(tree.headers) <= 1 {
		var out []Itemset
		mine(tree, nil, minCount, &out)
		return out
	}
	// The built tree is read-only during mining: workers only walk parent
	// and header chains and grow private conditional trees. Each header
	// item's subtree lands in its own slot; the ordered concatenation below
	// is the stable merge.
	outs := make([][]Itemset, len(tree.headers))
	par.For(w, len(tree.headers), func(hi int) {
		var out []Itemset
		mineHeader(tree, hi, nil, minCount, &out)
		outs[hi] = out
	})
	var out []Itemset
	for _, o := range outs {
		out = append(out, o...)
	}
	return out
}

func buildTree(txs []Transaction, freq map[Item]int, minCount int) *fpTree {
	t := newFPTree()
	for it, c := range freq {
		if c >= minCount {
			t.headers = append(t.headers, headerEntry{item: it, count: c})
		}
	}
	// Ascending count order (mining iterates least-frequent first); the
	// per-transaction ordering below is the reverse (most frequent first).
	sort.Slice(t.headers, func(i, j int) bool {
		if t.headers[i].count != t.headers[j].count {
			return t.headers[i].count < t.headers[j].count
		}
		return t.headers[i].item < t.headers[j].item
	})
	for i := range t.headers {
		t.index[t.headers[i].item] = i
	}
	// Deduplicate identical (filtered, ordered) transactions so each
	// distinct path is inserted once with its multiplicity — flow header
	// combinations repeat massively, so this collapses the input by orders
	// of magnitude.
	type weight struct{ count, bhCount int }
	dedup := make(map[string]*weight)
	order := make([]string, 0, 1024)
	itemsOf := make(map[string][]Item)
	var buf []Item
	keyBuf := make([]byte, 0, 64)
	for i := range txs {
		buf = buf[:0]
		for _, it := range txs[i].Items {
			if _, ok := t.index[it]; ok {
				buf = append(buf, it)
			}
		}
		// Most-frequent-first path ordering maximizes prefix sharing.
		sort.Slice(buf, func(a, b int) bool { return t.index[buf[a]] > t.index[buf[b]] })
		keyBuf = keyBuf[:0]
		for _, it := range buf {
			keyBuf = append(keyBuf, byte(it>>24), byte(it>>16), byte(it>>8), byte(it))
		}
		k := string(keyBuf)
		w := dedup[k]
		if w == nil {
			w = &weight{}
			dedup[k] = w
			order = append(order, k)
			itemsOf[k] = append([]Item(nil), buf...)
		}
		w.count++
		if txs[i].Blackholed {
			w.bhCount++
		}
	}
	for _, k := range order {
		w := dedup[k]
		t.insert(itemsOf[k], w.count, w.bhCount)
	}
	return t
}

// mine emits all frequent itemsets of tree suffixed with suffix, serially,
// in DFS order over the header table.
func mine(t *fpTree, suffix []Item, minCount int, out *[]Itemset) {
	for hi := range t.headers {
		mineHeader(t, hi, suffix, minCount, out)
	}
}

// mineHeader emits the frequent itemsets rooted at header item hi: the
// itemset of the item itself followed by every itemset of its conditional
// tree. It never mutates t, so distinct header items mine concurrently.
func mineHeader(t *fpTree, hi int, suffix []Item, minCount int, out *[]Itemset) {
	h := &t.headers[hi]
	// Total support of item within this conditional tree.
	total, totalBH := 0, 0
	for n := h.head; n != nil; n = n.next {
		total += n.count
		totalBH += n.bhCount
	}
	if total < minCount {
		return
	}
	itemset := make([]Item, 0, len(suffix)+1)
	itemset = append(itemset, h.item)
	itemset = append(itemset, suffix...)
	*out = append(*out, Itemset{Items: sortedCopy(itemset), Count: total, BHCount: totalBH})

	// Conditional pattern base for this item.
	condFreq := make(map[Item]int)
	type path struct {
		items   []Item
		count   int
		bhCount int
	}
	var paths []path
	for n := h.head; n != nil; n = n.next {
		var items []Item
		for p := n.parent; p != nil && p.parent != nil; p = p.parent {
			items = append(items, p.item)
		}
		if len(items) == 0 {
			continue
		}
		paths = append(paths, path{items: items, count: n.count, bhCount: n.bhCount})
		for _, it := range items {
			condFreq[it] += n.count
		}
	}
	if len(paths) == 0 {
		return
	}
	cond := newFPTree()
	for it, c := range condFreq {
		if c >= minCount {
			cond.headers = append(cond.headers, headerEntry{item: it, count: c})
		}
	}
	if len(cond.headers) == 0 {
		return
	}
	sort.Slice(cond.headers, func(i, j int) bool {
		if cond.headers[i].count != cond.headers[j].count {
			return cond.headers[i].count < cond.headers[j].count
		}
		return cond.headers[i].item < cond.headers[j].item
	})
	for i := range cond.headers {
		cond.index[cond.headers[i].item] = i
	}
	for _, p := range paths {
		kept := p.items[:0]
		for _, it := range p.items {
			if _, ok := cond.index[it]; ok {
				kept = append(kept, it)
			}
		}
		sort.Slice(kept, func(a, b int) bool { return cond.index[kept[a]] > cond.index[kept[b]] })
		cond.insert(kept, p.count, p.bhCount)
	}
	mine(cond, itemset, minCount, out)
}

func sortedCopy(items []Item) []Item {
	out := append([]Item(nil), items...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
