package tagging

import (
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
)

// Tagger matches flows against a set of accepted rules. It is the flow
// tagging step preserved through aggregation (§5.1) and the basis of both
// the RBC baseline classifier and ACL generation. Matching is optimized
// with a protocol/fragment pre-index so the per-flow cost is proportional
// to the few candidate rules, not the whole rule set.
type Tagger struct {
	rules []Rule
	// byKey indexes rule positions by (protocol present? value : 0xFF,
	// fragment constrained).
	byProto map[uint32][]int
	anyProt []int
}

// NewTagger builds a Tagger over the given rules (typically
// RuleSet.Accepted()).
func NewTagger(rules []Rule) *Tagger {
	t := &Tagger{
		rules:   append([]Rule(nil), rules...),
		byProto: make(map[uint32][]int),
	}
	for i := range t.rules {
		proto := uint32(0xFFFFFFFF)
		for _, it := range t.rules[i].Antecedent {
			if it.Field() == FieldProtocol {
				proto = it.Value()
			}
		}
		if proto == 0xFFFFFFFF {
			t.anyProt = append(t.anyProt, i)
		} else {
			t.byProto[proto] = append(t.byProto[proto], i)
		}
	}
	return t
}

// Rules returns the tagger's rules.
func (t *Tagger) Rules() []Rule { return t.rules }

// Match appends the indices (into Rules()) of every rule matching the
// record and returns the slice.
func (t *Tagger) Match(rec *netflow.Record, dst []int) []int {
	for _, i := range t.byProto[uint32(rec.Protocol)] {
		if t.rules[i].Match(rec) {
			dst = append(dst, i)
		}
	}
	for _, i := range t.anyProt {
		if t.rules[i].Match(rec) {
			dst = append(dst, i)
		}
	}
	return dst
}

// Matches reports whether any rule matches the record.
func (t *Tagger) Matches(rec *netflow.Record) bool {
	for _, i := range t.byProto[uint32(rec.Protocol)] {
		if t.rules[i].Match(rec) {
			return true
		}
	}
	for _, i := range t.anyProt {
		if t.rules[i].Match(rec) {
			return true
		}
	}
	return false
}
