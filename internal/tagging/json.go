package tagging

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ruleJSON is the export schema, following the released rule list
// (github.com/DE-CIX/ripe84-learning-acls): header fields are present when
// constrained and absent when wildcarded; port fields carry either a number
// or the spray marker; packet_size carries a half-open interval.
type ruleJSON struct {
	ID                string  `json:"id"`
	Protocol          *uint32 `json:"protocol,omitempty"`
	PortSrc           string  `json:"port_src,omitempty"`
	PortDst           string  `json:"port_dst,omitempty"`
	PacketSize        string  `json:"packet_size,omitempty"`
	Fragment          bool    `json:"fragment,omitempty"`
	Confidence        float64 `json:"confidence"`
	AntecedentSupport float64 `json:"antecedent_support"`
	RuleStatus        string  `json:"rule_status"`
	Notes             string  `json:"notes,omitempty"`
}

// sprayMarker encodes "not a popular port" (the released rules use negated
// port sets like "~{0,17,19,...}" for the same concept).
const sprayMarker = "~popular"

func ruleToJSON(r *Rule) ruleJSON {
	j := ruleJSON{
		ID:                r.ID,
		Confidence:        r.Confidence,
		AntecedentSupport: r.Support,
		RuleStatus:        string(r.Status),
		Notes:             r.Notes,
	}
	for _, it := range r.Antecedent {
		switch it.Field() {
		case FieldProtocol:
			v := it.Value()
			j.Protocol = &v
		case FieldSrcPort:
			j.PortSrc = portString(it.Value())
		case FieldDstPort:
			j.PortDst = portString(it.Value())
		case FieldSize:
			j.PacketSize = SizeBinLabel(it.Value())
		case FieldFragment:
			j.Fragment = true
		}
	}
	return j
}

func portString(v uint32) string {
	if v == PortOther {
		return sprayMarker
	}
	return strconv.FormatUint(uint64(v), 10)
}

func parsePort(s string) (uint32, error) {
	if s == sprayMarker || strings.HasPrefix(s, "~") {
		return PortOther, nil
	}
	v, err := strconv.ParseUint(s, 10, 16)
	if err != nil {
		return 0, fmt.Errorf("tagging: bad port %q: %w", s, err)
	}
	return uint32(v), nil
}

func parseSizeBin(s string) (uint32, error) {
	// Format "(lo,hi]" or "(lo,inf)".
	inner := strings.Trim(s, "(])")
	lo, _, ok := strings.Cut(inner, ",")
	if !ok {
		return 0, fmt.Errorf("tagging: bad packet_size %q", s)
	}
	v, err := strconv.ParseUint(lo, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("tagging: bad packet_size %q: %w", s, err)
	}
	return uint32(v) / SizeBinWidth, nil
}

func ruleFromJSON(j *ruleJSON) (Rule, error) {
	var items []Item
	if j.Protocol != nil {
		items = append(items, NewItem(FieldProtocol, *j.Protocol))
	}
	if j.PortSrc != "" {
		v, err := parsePort(j.PortSrc)
		if err != nil {
			return Rule{}, err
		}
		items = append(items, NewItem(FieldSrcPort, v))
	}
	if j.PortDst != "" {
		v, err := parsePort(j.PortDst)
		if err != nil {
			return Rule{}, err
		}
		items = append(items, NewItem(FieldDstPort, v))
	}
	if j.PacketSize != "" {
		v, err := parseSizeBin(j.PacketSize)
		if err != nil {
			return Rule{}, err
		}
		items = append(items, NewItem(FieldSize, v))
	}
	if j.Fragment {
		items = append(items, NewItem(FieldFragment, 1))
	}
	if len(items) == 0 {
		return Rule{}, fmt.Errorf("tagging: rule %q has an empty antecedent", j.ID)
	}
	items = sortedCopy(items)
	st := Status(j.RuleStatus)
	switch st {
	case StatusStaging, StatusAccept, StatusDecline:
	case "":
		st = StatusStaging
	default:
		return Rule{}, fmt.Errorf("tagging: rule %q has unknown status %q", j.ID, j.RuleStatus)
	}
	r := Rule{
		ID:         ruleID(items),
		Antecedent: items,
		Confidence: j.Confidence,
		Support:    j.AntecedentSupport,
		Status:     st,
		Notes:      j.Notes,
	}
	return r, nil
}

// Export writes the rule set as a JSON array in the released format.
func (s *RuleSet) Export(w io.Writer) error {
	rules := s.Rules()
	out := make([]ruleJSON, len(rules))
	for i := range rules {
		out[i] = ruleToJSON(&rules[i])
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("tagging: exporting rules: %w", err)
	}
	return nil
}

// Import reads a JSON rule list and returns a RuleSet.
func Import(r io.Reader) (*RuleSet, error) {
	var raw []ruleJSON
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("tagging: parsing rule list: %w", err)
	}
	rules := make([]Rule, 0, len(raw))
	for i := range raw {
		rule, err := ruleFromJSON(&raw[i])
		if err != nil {
			return nil, err
		}
		rules = append(rules, rule)
	}
	return NewRuleSet(rules), nil
}
