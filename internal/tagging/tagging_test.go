package tagging

import (
	"bytes"
	"net/netip"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"github.com/ixp-scrubber/ixpscrubber/internal/balance"
	"github.com/ixp-scrubber/ixpscrubber/internal/netflow"
	"github.com/ixp-scrubber/ixpscrubber/internal/synth"
)

func ntpRecord(bh bool) netflow.Record {
	return netflow.Record{
		Timestamp: 600,
		SrcIP:     netip.MustParseAddr("192.0.2.1"),
		DstIP:     netip.MustParseAddr("198.51.100.7"),
		SrcPort:   123, DstPort: 40000, Protocol: 17,
		Packets: 2048, Bytes: 2048 * 468, Blackholed: bh,
	}
}

func TestItemize(t *testing.T) {
	r := ntpRecord(true)
	items, bh := Itemize(&r, nil)
	if !bh {
		t.Error("label lost")
	}
	want := map[Item]bool{
		NewItem(FieldProtocol, 17):       true,
		NewItem(FieldSrcPort, 123):       true,
		NewItem(FieldDstPort, PortOther): true,
		NewItem(FieldSize, 4):            true, // 468 B -> (400,500]
	}
	if len(items) != len(want) {
		t.Fatalf("items = %v", ItemsString(items))
	}
	for _, it := range items {
		if !want[it] {
			t.Errorf("unexpected item %s", ItemString(it))
		}
	}
	if !sort.SliceIsSorted(items, func(i, j int) bool { return items[i] < items[j] }) {
		t.Error("items not sorted")
	}
}

func TestItemizeFragment(t *testing.T) {
	r := ntpRecord(true)
	r.Fragment = true
	r.SrcPort, r.DstPort = 0, 0
	items, _ := Itemize(&r, nil)
	hasFrag, hasPort := false, false
	for _, it := range items {
		if it.Field() == FieldFragment {
			hasFrag = true
		}
		if it.Field() == FieldSrcPort || it.Field() == FieldDstPort {
			hasPort = true
		}
	}
	if !hasFrag {
		t.Error("fragment item missing")
	}
	if hasPort {
		t.Error("fragments must not carry port items (no L4 header)")
	}
}

func TestItemPacking(t *testing.T) {
	f := func(fv uint8, v uint32) bool {
		fld := Field(fv%6 + 1)
		it := NewItem(fld, v&0xFFFFFF)
		return it.Field() == fld && it.Value() == v&0xFFFFFF
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSizeBins(t *testing.T) {
	cases := []struct {
		size float64
		bin  uint32
	}{{0, 0}, {99, 0}, {100, 1}, {468, 4}, {1499, 14}, {1514, 15}, {9999, 15}, {-5, 0}}
	for _, c := range cases {
		if got := sizeBin(c.size); got != c.bin {
			t.Errorf("sizeBin(%v) = %d, want %d", c.size, got, c.bin)
		}
	}
	if SizeBinLabel(4) != "(400,500]" {
		t.Errorf("label = %s", SizeBinLabel(4))
	}
	if !strings.Contains(SizeBinLabel(15), "inf") {
		t.Errorf("label = %s", SizeBinLabel(15))
	}
}

func TestMineFrequentSmall(t *testing.T) {
	a, b, c := NewItem(FieldProtocol, 17), NewItem(FieldSrcPort, 123), NewItem(FieldSize, 4)
	txs := []Transaction{
		{Items: []Item{a, b, c}, Blackholed: true},
		{Items: []Item{a, b, c}, Blackholed: true},
		{Items: []Item{a, b}, Blackholed: true},
		{Items: []Item{a, c}, Blackholed: false},
		{Items: []Item{a}, Blackholed: false},
	}
	sets := MineFrequent(txs, 2)
	bySig := map[string]Itemset{}
	for _, s := range sets {
		bySig[ItemsString(s.Items)] = s
	}
	check := func(items []Item, count, bh int) {
		t.Helper()
		s, ok := bySig[ItemsString(sortedCopy(items))]
		if !ok {
			t.Fatalf("itemset %s not mined", ItemsString(items))
		}
		if s.Count != count || s.BHCount != bh {
			t.Errorf("%s: count=%d bh=%d, want %d/%d", ItemsString(items), s.Count, s.BHCount, count, bh)
		}
	}
	check([]Item{a}, 5, 3)
	check([]Item{b}, 3, 3)
	check([]Item{c}, 3, 2)
	check([]Item{a, b}, 3, 3)
	check([]Item{a, c}, 3, 2)
	check([]Item{a, b, c}, 2, 2)
	check([]Item{b, c}, 2, 2)
	// Nothing below min support.
	for _, s := range sets {
		if s.Count < 2 {
			t.Errorf("itemset %s below min support: %d", ItemsString(s.Items), s.Count)
		}
	}
}

// TestMineFrequentAgainstBruteForce cross-checks FP-Growth against a naive
// enumerator on random transactions.
func TestMineFrequentAgainstBruteForce(t *testing.T) {
	f := func(seed uint8, raw [][3]uint8, labels []bool) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 24 {
			raw = raw[:24]
		}
		vocab := []Item{
			NewItem(FieldProtocol, 6), NewItem(FieldProtocol, 17),
			NewItem(FieldSrcPort, 53), NewItem(FieldSrcPort, 123),
			NewItem(FieldSize, 1), NewItem(FieldSize, 4),
		}
		txs := make([]Transaction, len(raw))
		for i, r := range raw {
			set := map[Item]bool{}
			for _, x := range r {
				set[vocab[int(x)%len(vocab)]] = true
			}
			var items []Item
			for it := range set {
				items = append(items, it)
			}
			bh := i < len(labels) && labels[i]
			txs[i] = Transaction{Items: sortedCopy(items), Blackholed: bh}
		}
		minCount := 1 + int(seed%3)
		got := MineFrequent(txs, minCount)
		gotMap := map[string][2]int{}
		for _, s := range got {
			gotMap[ItemsString(s.Items)] = [2]int{s.Count, s.BHCount}
		}
		// Brute force over all subsets of the vocabulary.
		for mask := 1; mask < 1<<len(vocab); mask++ {
			var subset []Item
			for b := 0; b < len(vocab); b++ {
				if mask&(1<<b) != 0 {
					subset = append(subset, vocab[b])
				}
			}
			subset = sortedCopy(subset)
			count, bh := 0, 0
			for _, tx := range txs {
				if containsAll(tx.Items, subset) {
					count++
					if tx.Blackholed {
						bh++
					}
				}
			}
			key := ItemsString(subset)
			if count >= minCount {
				g, ok := gotMap[key]
				if !ok || g[0] != count || g[1] != bh {
					return false
				}
			} else if _, ok := gotMap[key]; ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func containsAll(haystack, needles []Item) bool {
	i := 0
	for _, x := range haystack {
		if i < len(needles) && needles[i] == x {
			i++
		}
	}
	return i == len(needles)
}

func TestMinimizeRules(t *testing.T) {
	a, b, c := NewItem(FieldProtocol, 17), NewItem(FieldSrcPort, 123), NewItem(FieldSize, 4)
	general := Rule{ID: "g", Antecedent: []Item{a, b}, Confidence: 0.97, Support: 0.05}
	specific := Rule{ID: "s", Antecedent: []Item{a, b, c}, Confidence: 0.97, Support: 0.049}
	out := MinimizeRules([]Rule{general, specific}, 0.01, 0.01)
	if len(out) != 1 {
		t.Fatalf("kept %d rules, want 1", len(out))
	}
	if out[0].ID != "s" {
		t.Errorf("Algorithm 1 keeps the more specific rule; kept %q", out[0].ID)
	}

	// Large loss in support: both kept.
	general.Support = 0.5
	out = MinimizeRules([]Rule{general, specific}, 0.01, 0.01)
	if len(out) != 2 {
		t.Fatalf("kept %d rules, want 2 (support loss above Ls)", len(out))
	}

	// Large confidence advantage of the general rule: both kept.
	general.Support = 0.05
	general.Confidence = 0.999
	specific.Confidence = 0.85
	out = MinimizeRules([]Rule{general, specific}, 0.01, 0.01)
	if len(out) != 2 {
		t.Fatalf("kept %d rules, want 2 (confidence loss above Lc)", len(out))
	}
}

func TestMinimizeRulesChain(t *testing.T) {
	a, b, c := NewItem(FieldProtocol, 17), NewItem(FieldSrcPort, 123), NewItem(FieldSize, 4)
	r1 := Rule{ID: "1", Antecedent: []Item{a}, Confidence: 0.9, Support: 0.1}
	r2 := Rule{ID: "2", Antecedent: []Item{a, b}, Confidence: 0.9, Support: 0.1}
	r3 := Rule{ID: "3", Antecedent: []Item{a, b, c}, Confidence: 0.9, Support: 0.1}
	out := MinimizeRules([]Rule{r1, r2, r3}, 0.01, 0.01)
	if len(out) != 1 || out[0].ID != "3" {
		t.Fatalf("chain minimization kept %v", out)
	}
}

func TestIsProperSubset(t *testing.T) {
	a, b, c := Item(1), Item(2), Item(3)
	if !isProperSubset([]Item{a}, []Item{a, b}) {
		t.Error("a ⊂ ab")
	}
	if isProperSubset([]Item{a, b}, []Item{a, b}) {
		t.Error("equal sets are not proper subsets")
	}
	if isProperSubset([]Item{a, c}, []Item{a, b}) {
		t.Error("ac ⊄ ab")
	}
	if isProperSubset([]Item{a, b}, []Item{a}) {
		t.Error("longer cannot be subset")
	}
}

// TestMineOnSyntheticTraffic mines rules from a balanced synthetic dataset
// and checks the funnel shape of §5.1.1: all-consequent rules > blackhole
// rules > minimized rules, and that the minimized rules are dominated by
// known DDoS signatures.
func TestMineOnSyntheticTraffic(t *testing.T) {
	g := synth.NewGenerator(synth.ProfileUS1())
	flows := g.Generate(0, 300)
	balanced, _ := balance.Flows(1, flows)
	records := synth.Records(balanced)

	rules, rep := Mine(records, DefaultMineOptions())
	if len(rules) == 0 {
		t.Fatal("no rules mined")
	}
	if !(rep.RulesAllConsequents > rep.RulesBlackhole && rep.RulesBlackhole >= rep.RulesMinimized) {
		t.Errorf("funnel shape violated: %+v", rep)
	}
	if rep.RulesMinimized != len(rules) {
		t.Errorf("report/result mismatch: %d vs %d", rep.RulesMinimized, len(rules))
	}
	// Every rule respects the confidence floor.
	for _, r := range rules {
		if r.Confidence < 0.8 {
			t.Errorf("rule %s below confidence floor: %v", r.ID, r.Confidence)
		}
		if r.Status != StatusStaging {
			t.Errorf("mined rule not in staging: %v", r.Status)
		}
	}
	// An NTP signature must be among the mined rules (dominant vector).
	found := false
	for _, r := range rules {
		for _, it := range r.Antecedent {
			if it.Field() == FieldSrcPort && it.Value() == 123 {
				found = true
			}
		}
	}
	if !found {
		t.Error("no NTP rule mined from NTP-heavy traffic")
	}
}

func TestRuleSetCuration(t *testing.T) {
	a, b := NewItem(FieldProtocol, 17), NewItem(FieldSrcPort, 123)
	r1 := Rule{ID: ruleID([]Item{a, b}), Antecedent: []Item{a, b}, Confidence: 0.95, Support: 0.01, Status: StatusStaging}
	s := NewRuleSet([]Rule{r1})
	if err := s.SetStatus(r1.ID, StatusAccept, "NTP reflection"); err != nil {
		t.Fatal(err)
	}
	if got := s.Accepted(); len(got) != 1 || got[0].Notes != "NTP reflection" {
		t.Fatalf("accepted = %+v", got)
	}
	if err := s.SetStatus("nope", StatusAccept, ""); err == nil {
		t.Error("unknown rule must error")
	}
	// Merge: same rule updates stats but keeps status; new rule is staged.
	c := NewItem(FieldSize, 4)
	r1b := r1
	r1b.Confidence = 0.99
	r2 := Rule{ID: ruleID([]Item{a, c}), Antecedent: []Item{a, c}, Confidence: 0.9, Support: 0.005, Status: StatusAccept}
	added := s.Merge([]Rule{r1b, r2})
	if added != 1 {
		t.Errorf("added = %d", added)
	}
	rules := s.Rules()
	if len(rules) != 2 {
		t.Fatalf("len = %d", len(rules))
	}
	for _, r := range rules {
		switch r.ID {
		case r1.ID:
			if r.Status != StatusAccept || r.Confidence != 0.99 {
				t.Errorf("merged rule = %+v", r)
			}
		case r2.ID:
			if r.Status != StatusStaging {
				t.Errorf("new rule must stage, got %v", r.Status)
			}
		}
	}
	s.AcceptAll()
	if len(s.Accepted()) != 2 {
		t.Error("AcceptAll failed")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := synth.NewGenerator(synth.ProfileUS2())
	flows := g.Generate(0, 240)
	balanced, _ := balance.Flows(2, flows)
	rules, _ := Mine(synth.Records(balanced), DefaultMineOptions())
	if len(rules) == 0 {
		t.Skip("no rules mined at this scale")
	}
	set := NewRuleSet(rules)
	set.SetStatus(rules[0].ID, StatusAccept, "checked against looking glass")

	var buf bytes.Buffer
	if err := set.Export(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Import(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != set.Len() {
		t.Fatalf("round trip lost rules: %d vs %d", got.Len(), set.Len())
	}
	want := set.Rules()
	have := got.Rules()
	for i := range want {
		if want[i].ID != have[i].ID || want[i].Status != have[i].Status ||
			ItemsString(want[i].Antecedent) != ItemsString(have[i].Antecedent) {
			t.Errorf("rule %d mismatch:\n want %+v\n have %+v", i, want[i], have[i])
		}
	}
}

func TestImportRejectsBadInput(t *testing.T) {
	if _, err := Import(strings.NewReader("{not json")); err == nil {
		t.Error("bad JSON accepted")
	}
	if _, err := Import(strings.NewReader(`[{"id":"x","confidence":1,"antecedent_support":1,"rule_status":"accept"}]`)); err == nil {
		t.Error("empty antecedent accepted")
	}
	if _, err := Import(strings.NewReader(`[{"id":"x","protocol":17,"confidence":1,"antecedent_support":1,"rule_status":"meh"}]`)); err == nil {
		t.Error("unknown status accepted")
	}
	if _, err := Import(strings.NewReader(`[{"id":"x","protocol":17,"port_src":"99999","confidence":1,"antecedent_support":1}]`)); err == nil {
		t.Error("out-of-range port accepted")
	}
}

func TestTaggerMatch(t *testing.T) {
	ntp := Rule{Antecedent: []Item{
		NewItem(FieldProtocol, 17), NewItem(FieldSrcPort, 123),
	}}
	ntp.ID = ruleID(ntp.Antecedent)
	frag := Rule{Antecedent: []Item{NewItem(FieldFragment, 1)}}
	frag.ID = ruleID(frag.Antecedent)
	tg := NewTagger([]Rule{ntp, frag})

	r := ntpRecord(false)
	if !tg.Matches(&r) {
		t.Error("NTP record must match")
	}
	hits := tg.Match(&r, nil)
	if len(hits) != 1 || tg.Rules()[hits[0]].ID != ntp.ID {
		t.Errorf("hits = %v", hits)
	}
	r.SrcPort = 80
	if tg.Matches(&r) {
		t.Error("HTTP-from-80? no — src port 80 UDP should not match NTP rule")
	}
	r.Fragment = true
	if !tg.Matches(&r) {
		t.Error("fragment rule must match")
	}
}

func TestTaggerAgainstGroundTruth(t *testing.T) {
	// Mine on one traffic sample, accept everything, evaluate on a second
	// sample: accepted rules should catch most attack flows and little
	// benign traffic (the §5.1.3 quality argument).
	g := synth.NewGenerator(synth.ProfileUS1())
	train := g.Generate(0, 240)
	test := g.Generate(240, 420)

	balancedTrain, _ := balance.Flows(3, train)
	rules, _ := Mine(synth.Records(balancedTrain), DefaultMineOptions())
	set := NewRuleSet(rules)
	set.Apply(DefaultAcceptPolicy())
	tg := NewTagger(set.Accepted())

	var attack, attackHit, benign, benignHit int
	for i := range test {
		f := &test[i]
		hit := tg.Matches(&f.Record)
		if f.Attack {
			attack++
			if hit {
				attackHit++
			}
		} else {
			benign++
			if hit {
				benignHit++
			}
		}
	}
	if attack == 0 || benign == 0 {
		t.Fatal("degenerate test traffic")
	}
	tpr := float64(attackHit) / float64(attack)
	fpr := float64(benignHit) / float64(benign)
	if tpr < 0.5 {
		t.Errorf("rule recall on attacks = %.3f, want > 0.5 (paper RBC tpr 0.847)", tpr)
	}
	if fpr > 0.1 {
		t.Errorf("rule false positive rate on benign = %.3f, want < 0.1 (paper 0.43%%)", fpr)
	}
}

func BenchmarkMine(b *testing.B) {
	g := synth.NewGenerator(synth.ProfileUS1())
	flows := g.Generate(0, 120)
	balanced, _ := balance.Flows(4, flows)
	records := synth.Records(balanced)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mine(records, DefaultMineOptions())
	}
}

func BenchmarkTaggerMatch(b *testing.B) {
	g := synth.NewGenerator(synth.ProfileUS1())
	flows := g.Generate(0, 120)
	balanced, _ := balance.Flows(5, flows)
	rules, _ := Mine(synth.Records(balanced), DefaultMineOptions())
	set := NewRuleSet(rules)
	set.AcceptAll()
	tg := NewTagger(set.Accepted())
	rec := ntpRecord(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tg.Matches(&rec)
	}
}
