package packet

import (
	"encoding/binary"
	"fmt"
)

// Builder assembles packet headers into a byte buffer. It is used by the
// synthetic traffic generator and the sFlow encoder to produce wire-format
// sampled packet headers. The zero value is ready for use.
type Builder struct {
	buf []byte
}

// Reset clears the builder while retaining the allocated buffer.
func (b *Builder) Reset() { b.buf = b.buf[:0] }

// Bytes returns the assembled frame. The slice aliases the builder's buffer
// and is invalidated by the next Reset.
func (b *Builder) Bytes() []byte { return b.buf }

// Ethernet appends an Ethernet II header. A non-zero vlan emits an 802.1Q tag.
func (b *Builder) Ethernet(dst, src MAC, etherType EtherType, vlan uint16) *Builder {
	b.buf = append(b.buf, dst[:]...)
	b.buf = append(b.buf, src[:]...)
	if vlan != 0 {
		b.buf = binary.BigEndian.AppendUint16(b.buf, uint16(EtherTypeVLAN))
		b.buf = binary.BigEndian.AppendUint16(b.buf, vlan&0x0fff)
	}
	b.buf = binary.BigEndian.AppendUint16(b.buf, uint16(etherType))
	return b
}

// IPv4Opts carries the optional fields of an IPv4 header; zero values give a
// plain non-fragmented header.
type IPv4Opts struct {
	TOS        uint8
	ID         uint16
	Flags      uint8
	FragOffset uint16
	TTL        uint8 // 0 means 64
}

// IPv4 appends an IPv4 header without options. totalLength covers header plus
// payload; the checksum is computed.
func (b *Builder) IPv4(src, dst [4]byte, proto IPProtocol, totalLength uint16, o IPv4Opts) *Builder {
	ttl := o.TTL
	if ttl == 0 {
		ttl = 64
	}
	start := len(b.buf)
	b.buf = append(b.buf, 0x45, o.TOS)
	b.buf = binary.BigEndian.AppendUint16(b.buf, totalLength)
	b.buf = binary.BigEndian.AppendUint16(b.buf, o.ID)
	b.buf = binary.BigEndian.AppendUint16(b.buf, uint16(o.Flags)<<13|o.FragOffset&0x1fff)
	b.buf = append(b.buf, ttl, uint8(proto), 0, 0) // checksum placeholder
	b.buf = append(b.buf, src[:]...)
	b.buf = append(b.buf, dst[:]...)
	sum := ipChecksum(b.buf[start : start+20])
	binary.BigEndian.PutUint16(b.buf[start+10:start+12], sum)
	return b
}

// IPv6 appends a fixed IPv6 header.
func (b *Builder) IPv6(src, dst [16]byte, next IPProtocol, payloadLength uint16, hopLimit uint8) *Builder {
	if hopLimit == 0 {
		hopLimit = 64
	}
	b.buf = append(b.buf, 0x60, 0, 0, 0)
	b.buf = binary.BigEndian.AppendUint16(b.buf, payloadLength)
	b.buf = append(b.buf, uint8(next), hopLimit)
	b.buf = append(b.buf, src[:]...)
	b.buf = append(b.buf, dst[:]...)
	return b
}

// TCP appends a TCP header with no options; the checksum field is left zero
// (sampled headers at IXPs are not checksum-verified).
func (b *Builder) TCP(srcPort, dstPort uint16, seq, ack uint32, flags uint8, window uint16) *Builder {
	b.buf = binary.BigEndian.AppendUint16(b.buf, srcPort)
	b.buf = binary.BigEndian.AppendUint16(b.buf, dstPort)
	b.buf = binary.BigEndian.AppendUint32(b.buf, seq)
	b.buf = binary.BigEndian.AppendUint32(b.buf, ack)
	b.buf = append(b.buf, 5<<4, flags)
	b.buf = binary.BigEndian.AppendUint16(b.buf, window)
	b.buf = append(b.buf, 0, 0, 0, 0) // checksum, urgent
	return b
}

// UDP appends a UDP header. length covers header plus payload.
func (b *Builder) UDP(srcPort, dstPort, length uint16) *Builder {
	b.buf = binary.BigEndian.AppendUint16(b.buf, srcPort)
	b.buf = binary.BigEndian.AppendUint16(b.buf, dstPort)
	b.buf = binary.BigEndian.AppendUint16(b.buf, length)
	b.buf = append(b.buf, 0, 0)
	return b
}

// ICMP appends an ICMP header with a computed checksum over the header only.
func (b *Builder) ICMP(typ, code uint8) *Builder {
	start := len(b.buf)
	b.buf = append(b.buf, typ, code, 0, 0)
	sum := ipChecksum(b.buf[start : start+4])
	binary.BigEndian.PutUint16(b.buf[start+2:start+4], sum)
	return b
}

// Payload appends n bytes of deterministic filler payload.
func (b *Builder) Payload(n int) *Builder {
	for i := 0; i < n; i++ {
		b.buf = append(b.buf, byte(i))
	}
	return b
}

// ipChecksum computes the RFC 1071 Internet checksum over data.
func ipChecksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// Validate performs a structural sanity check of a built frame by round-trip
// decoding it. It is intended for tests and generator self-checks.
func Validate(frame []byte) error {
	var p Packet
	if err := p.Decode(frame); err != nil {
		return fmt.Errorf("packet: self-check failed: %w", err)
	}
	return nil
}
