package packet

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

var (
	macA = MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x0a}
	macB = MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x0b}
)

func TestDecodeUDPv4RoundTrip(t *testing.T) {
	var b Builder
	b.Ethernet(macB, macA, EtherTypeIPv4, 0).
		IPv4([4]byte{192, 0, 2, 1}, [4]byte{198, 51, 100, 7}, ProtoUDP, 20+8+100, IPv4Opts{TTL: 57, ID: 0x1234}).
		UDP(123, 40000, 8+100).
		Payload(100)

	var p Packet
	if err := p.Decode(b.Bytes()); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !p.Has(LayerEthernet) || !p.Has(LayerIPv4) || !p.Has(LayerUDP) {
		t.Fatalf("layers = %b, want eth|ipv4|udp", p.Layers)
	}
	if p.Eth.SrcMAC != macA || p.Eth.DstMAC != macB {
		t.Errorf("MACs = %v -> %v", p.Eth.SrcMAC, p.Eth.DstMAC)
	}
	if p.IP4.SrcIP != [4]byte{192, 0, 2, 1} || p.IP4.DstIP != [4]byte{198, 51, 100, 7} {
		t.Errorf("IPs = %v -> %v", p.IP4.SrcIP, p.IP4.DstIP)
	}
	if p.IP4.TTL != 57 || p.IP4.ID != 0x1234 || p.IP4.Protocol != ProtoUDP {
		t.Errorf("ipv4 fields = %+v", p.IP4)
	}
	if src, dst := p.Ports(); src != 123 || dst != 40000 {
		t.Errorf("ports = %d,%d want 123,40000", src, dst)
	}
	if len(p.Payload) != 100 {
		t.Errorf("payload len = %d, want 100", len(p.Payload))
	}
}

func TestDecodeTCPv4Flags(t *testing.T) {
	var b Builder
	b.Ethernet(macB, macA, EtherTypeIPv4, 0).
		IPv4([4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}, ProtoTCP, 20+20, IPv4Opts{}).
		TCP(443, 55000, 1000, 2000, FlagSYN|FlagACK, 65535)

	var p Packet
	if err := p.Decode(b.Bytes()); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !p.Has(LayerTCP) {
		t.Fatal("missing TCP layer")
	}
	if p.TCP.Flags != FlagSYN|FlagACK {
		t.Errorf("flags = %08b", p.TCP.Flags)
	}
	if p.TCP.Seq != 1000 || p.TCP.Ack != 2000 || p.TCP.Window != 65535 {
		t.Errorf("tcp = %+v", p.TCP)
	}
}

func TestDecodeVLAN(t *testing.T) {
	var b Builder
	b.Ethernet(macB, macA, EtherTypeIPv4, 1234).
		IPv4([4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}, ProtoICMP, 24, IPv4Opts{}).
		ICMP(8, 0)

	var p Packet
	if err := p.Decode(b.Bytes()); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !p.Eth.HasVLAN || p.Eth.VLAN != 1234 {
		t.Errorf("vlan = %v %d", p.Eth.HasVLAN, p.Eth.VLAN)
	}
	if !p.Has(LayerICMP) || p.ICMP.Type != 8 {
		t.Errorf("icmp = %+v", p.ICMP)
	}
}

func TestDecodeIPv6UDP(t *testing.T) {
	src := [16]byte{0x20, 0x01, 0x0d, 0xb8, 15: 1}
	dst := [16]byte{0x20, 0x01, 0x0d, 0xb8, 15: 2}
	var b Builder
	b.Ethernet(macB, macA, EtherTypeIPv6, 0).
		IPv6(src, dst, ProtoUDP, 8+10, 0).
		UDP(53, 33000, 18).
		Payload(10)

	var p Packet
	if err := p.Decode(b.Bytes()); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !p.Has(LayerIPv6) || !p.Has(LayerUDP) {
		t.Fatalf("layers = %b", p.Layers)
	}
	if p.IP6.SrcIP != src || p.IP6.DstIP != dst {
		t.Errorf("ips = %x -> %x", p.IP6.SrcIP, p.IP6.DstIP)
	}
	if p.Protocol() != ProtoUDP {
		t.Errorf("protocol = %v", p.Protocol())
	}
}

func TestDecodeFragmentSkipsTransport(t *testing.T) {
	var b Builder
	b.Ethernet(macB, macA, EtherTypeIPv4, 0).
		IPv4([4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}, ProtoUDP, 20+64, IPv4Opts{Flags: 0x1, FragOffset: 185}).
		Payload(64)

	var p Packet
	if err := p.Decode(b.Bytes()); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if p.Has(LayerUDP) {
		t.Error("non-first fragment must not decode a UDP layer")
	}
	if !p.IP4.IsFragment() || !p.IP4.MoreFragments() {
		t.Errorf("fragment flags lost: %+v", p.IP4)
	}
	if s, d := p.Ports(); s != 0 || d != 0 {
		t.Errorf("ports on fragment = %d,%d", s, d)
	}
}

func TestDecodeFirstFragmentKeepsTransport(t *testing.T) {
	var b Builder
	b.Ethernet(macB, macA, EtherTypeIPv4, 0).
		IPv4([4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}, ProtoUDP, 20+8+64, IPv4Opts{Flags: 0x1}).
		UDP(53, 4444, 8+64).
		Payload(64)

	var p Packet
	if err := p.Decode(b.Bytes()); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !p.Has(LayerUDP) {
		t.Error("first fragment should still decode UDP")
	}
	if !p.IP4.IsFragment() {
		t.Error("MF bit lost")
	}
}

func TestDecodeTruncated(t *testing.T) {
	var b Builder
	b.Ethernet(macB, macA, EtherTypeIPv4, 0).
		IPv4([4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}, ProtoTCP, 40, IPv4Opts{}).
		TCP(80, 1024, 0, 0, FlagACK, 1024)
	frame := b.Bytes()

	for _, cut := range []int{0, 5, 13, 15, 20, 33, 35, len(frame) - 1} {
		var p Packet
		err := p.Decode(frame[:cut])
		if err == nil {
			t.Errorf("cut=%d: want error, got layers %b", cut, p.Layers)
			continue
		}
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("cut=%d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestDecodeUnknownEtherType(t *testing.T) {
	var b Builder
	b.Ethernet(macB, macA, EtherTypeARP, 0).Payload(28)
	var p Packet
	if err := p.Decode(b.Bytes()); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !p.Has(LayerEthernet) || p.Has(LayerIPv4) {
		t.Errorf("layers = %b", p.Layers)
	}
	if len(p.Payload) != 28 {
		t.Errorf("payload = %d", len(p.Payload))
	}
}

func TestDecodeUnknownIPProtocol(t *testing.T) {
	var b Builder
	b.Ethernet(macB, macA, EtherTypeIPv4, 0).
		IPv4([4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}, ProtoGRE, 20+8, IPv4Opts{}).
		Payload(8)
	var p Packet
	if err := p.Decode(b.Bytes()); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if p.Protocol() != ProtoGRE {
		t.Errorf("protocol = %v", p.Protocol())
	}
	if p.Has(LayerTCP) || p.Has(LayerUDP) {
		t.Error("bogus transport layer decoded")
	}
}

func TestIPChecksum(t *testing.T) {
	// Example from RFC 1071 discussions: verify the checksum verifies.
	var b Builder
	b.IPv4([4]byte{192, 168, 0, 1}, [4]byte{192, 168, 0, 199}, ProtoUDP, 60, IPv4Opts{TTL: 64})
	hdr := b.Bytes()
	// Recomputing the checksum over a header including its checksum field
	// must yield zero.
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(hdr[i])<<8 | uint32(hdr[i+1])
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	if ^uint16(sum) != 0 {
		t.Errorf("checksum does not verify: %04x", ^uint16(sum))
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if got := m.String(); got != "de:ad:be:ef:00:01" {
		t.Errorf("String() = %q", got)
	}
}

func TestStringers(t *testing.T) {
	if EtherTypeIPv4.String() != "IPv4" || EtherTypeIPv6.String() != "IPv6" {
		t.Error("EtherType names")
	}
	if !strings.Contains(EtherType(0x1234).String(), "0x1234") {
		t.Error("unknown EtherType formatting")
	}
	if ProtoUDP.String() != "UDP" || ProtoTCP.String() != "TCP" {
		t.Error("protocol names")
	}
	if !strings.Contains(IPProtocol(200).String(), "200") {
		t.Error("unknown protocol formatting")
	}
}

// TestDecodeNeverPanics fuzzes the decoder with arbitrary bytes: it must
// either decode or return an error, never panic, for any input.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		var p Packet
		_ = p.Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeDecodeProperty round-trips randomized UDP frames.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(srcIP, dstIP [4]byte, srcPort, dstPort uint16, payLen uint8) bool {
		var b Builder
		b.Ethernet(macB, macA, EtherTypeIPv4, 0).
			IPv4(srcIP, dstIP, ProtoUDP, 20+8+uint16(payLen), IPv4Opts{}).
			UDP(srcPort, dstPort, 8+uint16(payLen)).
			Payload(int(payLen))
		var p Packet
		if err := p.Decode(b.Bytes()); err != nil {
			return false
		}
		s, d := p.Ports()
		return p.IP4.SrcIP == srcIP && p.IP4.DstIP == dstIP &&
			s == srcPort && d == dstPort && len(p.Payload) == int(payLen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderReuse(t *testing.T) {
	var b Builder
	b.Ethernet(macB, macA, EtherTypeIPv4, 0).
		IPv4([4]byte{1, 1, 1, 1}, [4]byte{2, 2, 2, 2}, ProtoUDP, 28, IPv4Opts{}).
		UDP(1, 2, 8)
	n1 := len(b.Bytes())
	b.Reset()
	if len(b.Bytes()) != 0 {
		t.Fatal("Reset did not clear")
	}
	b.Ethernet(macB, macA, EtherTypeIPv4, 0).
		IPv4([4]byte{1, 1, 1, 1}, [4]byte{2, 2, 2, 2}, ProtoUDP, 28, IPv4Opts{}).
		UDP(1, 2, 8)
	if len(b.Bytes()) != n1 {
		t.Fatalf("reuse produced %d bytes, want %d", len(b.Bytes()), n1)
	}
	if err := Validate(b.Bytes()); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDecodeUDP(b *testing.B) {
	var bld Builder
	bld.Ethernet(macB, macA, EtherTypeIPv4, 0).
		IPv4([4]byte{192, 0, 2, 1}, [4]byte{198, 51, 100, 7}, ProtoUDP, 128, IPv4Opts{}).
		UDP(123, 40000, 108).
		Payload(100)
	frame := bld.Bytes()
	var p Packet
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}
