package packet

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestPcapRoundTrip(t *testing.T) {
	var b Builder
	b.Ethernet(macB, macA, EtherTypeIPv4, 0).
		IPv4([4]byte{192, 0, 2, 1}, [4]byte{198, 51, 100, 7}, ProtoUDP, 128, IPv4Opts{}).
		UDP(123, 4444, 108).
		Payload(40)
	frame := append([]byte(nil), b.Bytes()...)

	var buf bytes.Buffer
	w := NewPcapWriter(&buf)
	if err := w.WriteFrame(1000, 250000, frame, 468); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFrame(1001, 0, frame[:60], 60); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 2 {
		t.Errorf("count = %d", w.Count())
	}

	r := NewPcapReader(&buf)
	f1, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if f1.TsSec != 1000 || f1.TsMicro != 250000 || f1.OrigLen != 468 {
		t.Errorf("frame 1 header = %+v", f1)
	}
	if !bytes.Equal(f1.Data, frame) {
		t.Error("frame 1 data mismatch")
	}
	// Round-trip decodes as a packet again.
	var p Packet
	if err := p.Decode(f1.Data); err != nil {
		t.Fatal(err)
	}
	if s, _ := p.Ports(); s != 123 {
		t.Errorf("src port after pcap round trip = %d", s)
	}
	f2, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Data) != 60 || f2.OrigLen != 60 {
		t.Errorf("frame 2 = %+v", f2)
	}
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Errorf("want EOF, got %v", err)
	}
}

func TestPcapEmptyFile(t *testing.T) {
	var buf bytes.Buffer
	w := NewPcapWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewPcapReader(&buf)
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestPcapRejectsGarbage(t *testing.T) {
	r := NewPcapReader(bytes.NewReader(bytes.Repeat([]byte{0x42}, 64)))
	if _, err := r.Read(); !errors.Is(err, ErrBadPcap) {
		t.Fatalf("err = %v, want ErrBadPcap", err)
	}
	// Oversized frame length.
	var buf bytes.Buffer
	w := NewPcapWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	rec := make([]byte, 16)
	rec[8] = 0xFF
	rec[9] = 0xFF
	rec[10] = 0xFF
	rec[11] = 0x7F
	data = append(data, rec...)
	if _, err := NewPcapReader(bytes.NewReader(data)).Read(); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestPcapOrigLenClamped(t *testing.T) {
	var buf bytes.Buffer
	w := NewPcapWriter(&buf)
	frame := make([]byte, 100)
	if err := w.WriteFrame(0, 0, frame, 50); err != nil { // origLen < capLen: clamped up
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f, err := NewPcapReader(&buf).Read()
	if err != nil {
		t.Fatal(err)
	}
	if f.OrigLen != 100 {
		t.Errorf("origLen = %d, want clamped to 100", f.OrigLen)
	}
}

// TestPcapReadInto: the reuse path must match Read record-for-record, keep
// earlier copies intact, and stop allocating once f.Data has grown to the
// largest frame.
func TestPcapReadInto(t *testing.T) {
	var buf bytes.Buffer
	w := NewPcapWriter(&buf)
	const n = 50
	for i := 0; i < n; i++ {
		frame := bytes.Repeat([]byte{byte(i)}, 60+i%40)
		if err := w.WriteFrame(int64(1000+i), int64(i), frame, 1500); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	ref := NewPcapReader(bytes.NewReader(data))
	r := NewPcapReader(bytes.NewReader(data))
	var f PcapFrame
	for i := 0; ; i++ {
		want, werr := ref.Read()
		rerr := r.ReadInto(&f)
		if errors.Is(werr, io.EOF) {
			if !errors.Is(rerr, io.EOF) {
				t.Fatalf("frame %d: ReadInto err = %v, want EOF", i, rerr)
			}
			break
		}
		if werr != nil || rerr != nil {
			t.Fatalf("frame %d: Read err = %v, ReadInto err = %v", i, werr, rerr)
		}
		if f.TsSec != want.TsSec || f.TsMicro != want.TsMicro || f.OrigLen != want.OrigLen || !bytes.Equal(f.Data, want.Data) {
			t.Fatalf("frame %d: ReadInto = %+v, want %+v", i, f, *want)
		}
	}

	// Steady state: budget 0 allocs once Data capacity covers every frame.
	big := NewPcapReader(bytes.NewReader(data))
	f.Data = make([]byte, 0, 128)
	if err := big.ReadInto(&f); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(40, func() {
		if err := big.ReadInto(&f); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("ReadInto allocs/run = %v, budget 0", avg)
	}
}
