package packet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Classic libpcap file format support (the .pcap files Wireshark and tcpdump
// read), used to dump sampled frames for offline inspection — the debugging
// companion to the flow-level pipeline.

const (
	pcapMagic   = 0xa1b2c3d4 // microsecond timestamps, native byte order
	pcapVMajor  = 2
	pcapVMinor  = 4
	linkTypeEth = 1
)

// ErrBadPcap reports an unrecognized pcap header.
var ErrBadPcap = errors.New("packet: not a pcap file")

// PcapWriter writes Ethernet frames into a pcap stream.
type PcapWriter struct {
	w     *bufio.Writer
	began bool
	count int
}

// NewPcapWriter wraps w.
func NewPcapWriter(w io.Writer) *PcapWriter {
	return &PcapWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

func (p *PcapWriter) begin() error {
	if p.began {
		return nil
	}
	p.began = true
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], pcapVMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], pcapVMinor)
	// thiszone, sigfigs = 0
	binary.LittleEndian.PutUint32(hdr[16:20], 65535) // snaplen
	binary.LittleEndian.PutUint32(hdr[20:24], linkTypeEth)
	if _, err := p.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("packet: pcap header: %w", err)
	}
	return nil
}

// WriteFrame appends one captured frame. origLen is the frame's length on
// the wire (sampled headers are truncated, so origLen >= len(frame)).
func (p *PcapWriter) WriteFrame(tsSec int64, tsMicro int64, frame []byte, origLen int) error {
	if err := p.begin(); err != nil {
		return err
	}
	if origLen < len(frame) {
		origLen = len(frame)
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(tsSec))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(tsMicro))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(frame)))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(origLen))
	if _, err := p.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("packet: pcap record header: %w", err)
	}
	if _, err := p.w.Write(frame); err != nil {
		return fmt.Errorf("packet: pcap frame: %w", err)
	}
	p.count++
	return nil
}

// Count returns the number of frames written.
func (p *PcapWriter) Count() int { return p.count }

// Flush writes the header if nothing was written and flushes buffers.
func (p *PcapWriter) Flush() error {
	if err := p.begin(); err != nil {
		return err
	}
	return p.w.Flush()
}

// PcapFrame is one frame read back from a pcap stream.
type PcapFrame struct {
	TsSec   int64
	TsMicro int64
	OrigLen int
	Data    []byte
}

// PcapReader reads frames from a pcap stream (native-order microsecond
// format, Ethernet link type — what PcapWriter produces).
type PcapReader struct {
	r     *bufio.Reader
	hdr   [16]byte // record-header scratch (a stack array would escape through io.ReadFull)
	began bool
}

// NewPcapReader wraps r.
func NewPcapReader(r io.Reader) *PcapReader {
	return &PcapReader{r: bufio.NewReaderSize(r, 1<<16)}
}

func (p *PcapReader) begin() error {
	if p.began {
		return nil
	}
	p.began = true
	var hdr [24]byte
	if _, err := io.ReadFull(p.r, hdr[:]); err != nil {
		return fmt.Errorf("packet: pcap header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != pcapMagic {
		return ErrBadPcap
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:24]); lt != linkTypeEth {
		return fmt.Errorf("packet: pcap link type %d unsupported", lt)
	}
	return nil
}

// Read returns the next frame, or io.EOF at a clean end of stream. It
// allocates a fresh frame per call; loops over large captures reuse one via
// ReadInto.
func (p *PcapReader) Read() (*PcapFrame, error) {
	f := &PcapFrame{}
	if err := p.ReadInto(f); err != nil {
		return nil, err
	}
	return f, nil
}

// ReadInto fills f with the next frame, growing f.Data only when the frame
// exceeds its capacity — at steady state a capture loop reads without
// allocating. Returns io.EOF at a clean end of stream; on error f is left in
// an unspecified state.
func (p *PcapReader) ReadInto(f *PcapFrame) error {
	if err := p.begin(); err != nil {
		return err
	}
	if _, err := io.ReadFull(p.r, p.hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("packet: pcap record: %w", err)
	}
	capLen := binary.LittleEndian.Uint32(p.hdr[8:12])
	if capLen > 1<<20 {
		return fmt.Errorf("packet: pcap frame of %d bytes exceeds sanity cap", capLen)
	}
	f.TsSec = int64(binary.LittleEndian.Uint32(p.hdr[0:4]))
	f.TsMicro = int64(binary.LittleEndian.Uint32(p.hdr[4:8]))
	f.OrigLen = int(binary.LittleEndian.Uint32(p.hdr[12:16]))
	if cap(f.Data) >= int(capLen) {
		f.Data = f.Data[:capLen]
	} else {
		f.Data = make([]byte, capLen)
	}
	if _, err := io.ReadFull(p.r, f.Data); err != nil {
		return fmt.Errorf("packet: pcap frame body: %w", err)
	}
	return nil
}
