// Package packet implements encoding and decoding of L2-L4 packet headers
// (Ethernet, 802.1Q, IPv4, IPv6, TCP, UDP, ICMP) as seen in sampled packet
// traces at Internet Exchange Points.
//
// The decoder follows a layered model: Decode parses as many layers as are
// present and records which layers were found. It is allocation-free on the
// hot path: a Packet value can be reused across calls and slices returned
// alias the input buffer.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Sentinel decode errors. All errors returned by Decode wrap one of these.
var (
	ErrTruncated   = errors.New("packet: truncated")
	ErrUnsupported = errors.New("packet: unsupported layer")
)

// EtherType identifies the payload protocol of an Ethernet frame.
type EtherType uint16

// Well-known EtherTypes.
const (
	EtherTypeIPv4 EtherType = 0x0800
	EtherTypeARP  EtherType = 0x0806
	EtherTypeVLAN EtherType = 0x8100
	EtherTypeIPv6 EtherType = 0x86DD
)

// String returns the conventional name of the EtherType.
func (t EtherType) String() string {
	switch t {
	case EtherTypeIPv4:
		return "IPv4"
	case EtherTypeARP:
		return "ARP"
	case EtherTypeVLAN:
		return "802.1Q"
	case EtherTypeIPv6:
		return "IPv6"
	default:
		return fmt.Sprintf("EtherType(0x%04x)", uint16(t))
	}
}

// IPProtocol is an IP next-header / protocol number.
type IPProtocol uint8

// Well-known IP protocol numbers.
const (
	ProtoICMP   IPProtocol = 1
	ProtoIGMP   IPProtocol = 2
	ProtoTCP    IPProtocol = 6
	ProtoUDP    IPProtocol = 17
	ProtoGRE    IPProtocol = 47
	ProtoESP    IPProtocol = 50
	ProtoICMPv6 IPProtocol = 58
	ProtoSCTP   IPProtocol = 132
)

// String returns the conventional name of the protocol.
func (p IPProtocol) String() string {
	switch p {
	case ProtoICMP:
		return "ICMP"
	case ProtoIGMP:
		return "IGMP"
	case ProtoTCP:
		return "TCP"
	case ProtoUDP:
		return "UDP"
	case ProtoGRE:
		return "GRE"
	case ProtoESP:
		return "ESP"
	case ProtoICMPv6:
		return "ICMPv6"
	case ProtoSCTP:
		return "SCTP"
	default:
		return fmt.Sprintf("IPProtocol(%d)", uint8(p))
	}
}

// MAC is a 48-bit Ethernet hardware address.
type MAC [6]byte

// String formats the address as colon-separated hex.
func (m MAC) String() string {
	const hexDigit = "0123456789abcdef"
	buf := make([]byte, 0, 17)
	for i, b := range m {
		if i > 0 {
			buf = append(buf, ':')
		}
		buf = append(buf, hexDigit[b>>4], hexDigit[b&0xf])
	}
	return string(buf)
}

// TCP flag bits as found in the flags byte of the TCP header.
const (
	FlagFIN uint8 = 1 << 0
	FlagSYN uint8 = 1 << 1
	FlagRST uint8 = 1 << 2
	FlagPSH uint8 = 1 << 3
	FlagACK uint8 = 1 << 4
	FlagURG uint8 = 1 << 5
)

// Ethernet is a decoded Ethernet II header, including an optional single
// 802.1Q VLAN tag.
type Ethernet struct {
	DstMAC, SrcMAC MAC
	EtherType      EtherType // after VLAN tag, if any
	VLAN           uint16    // VLAN ID; 0 if untagged
	HasVLAN        bool
}

// IPv4 is a decoded IPv4 header.
type IPv4 struct {
	IHL            uint8 // header length in 32-bit words
	TOS            uint8
	TotalLength    uint16
	ID             uint16
	Flags          uint8  // 3 bits: reserved, DF, MF
	FragOffset     uint16 // in 8-byte units
	TTL            uint8
	Protocol       IPProtocol
	Checksum       uint16
	SrcIP, DstIP   [4]byte
}

// MoreFragments reports whether the MF bit is set.
func (h *IPv4) MoreFragments() bool { return h.Flags&0x1 != 0 }

// DontFragment reports whether the DF bit is set.
func (h *IPv4) DontFragment() bool { return h.Flags&0x2 != 0 }

// IsFragment reports whether the packet is a fragment (MF set or a non-zero
// fragment offset). Non-first fragments carry no L4 header, the signature the
// paper's "UDP fragments" DDoS class keys on.
func (h *IPv4) IsFragment() bool { return h.MoreFragments() || h.FragOffset != 0 }

// IPv6 is a decoded fixed IPv6 header.
type IPv6 struct {
	TrafficClass  uint8
	FlowLabel     uint32
	PayloadLength uint16
	NextHeader    IPProtocol
	HopLimit      uint8
	SrcIP, DstIP  [16]byte
}

// TCP is a decoded TCP header.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOffset       uint8 // header length in 32-bit words
	Flags            uint8
	Window           uint16
	Checksum         uint16
	Urgent           uint16
}

// UDP is a decoded UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

// ICMP is a decoded ICMP (v4 or v6) header.
type ICMP struct {
	Type, Code uint8
	Checksum   uint16
}

// Layer identifies a protocol layer found during decoding.
type Layer uint8

// Layers that Decode can identify.
const (
	LayerEthernet Layer = 1 << iota
	LayerIPv4
	LayerIPv6
	LayerTCP
	LayerUDP
	LayerICMP
)

// Packet holds the decoded layers of one sampled packet. The zero value is
// ready for use; Decode resets all fields.
type Packet struct {
	Eth     Ethernet
	IP4     IPv4
	IP6     IPv6
	TCP     TCP
	UDP     UDP
	ICMP    ICMP
	Layers  Layer  // bitmask of layers present
	Payload []byte // bytes after the last decoded header (aliases input)
}

// Has reports whether layer l was decoded.
func (p *Packet) Has(l Layer) bool { return p.Layers&l != 0 }

// Protocol returns the IP protocol number, or 0 if no IP layer was decoded.
func (p *Packet) Protocol() IPProtocol {
	switch {
	case p.Has(LayerIPv4):
		return p.IP4.Protocol
	case p.Has(LayerIPv6):
		return p.IP6.NextHeader
	default:
		return 0
	}
}

// Ports returns the transport source and destination ports, or (0, 0) when no
// TCP/UDP layer is present (e.g. non-first fragments).
func (p *Packet) Ports() (src, dst uint16) {
	switch {
	case p.Has(LayerTCP):
		return p.TCP.SrcPort, p.TCP.DstPort
	case p.Has(LayerUDP):
		return p.UDP.SrcPort, p.UDP.DstPort
	default:
		return 0, 0
	}
}

// Decode parses an Ethernet frame beginning at data[0]. It decodes as many
// layers as are present and supported; finding an unsupported upper layer is
// not an error (decoding stops and the rest becomes Payload). A frame too
// short for a layer it promises yields ErrTruncated.
func (p *Packet) Decode(data []byte) error {
	p.Layers = 0
	p.Payload = nil
	rest, err := p.decodeEthernet(data)
	if err != nil {
		return err
	}
	switch p.Eth.EtherType {
	case EtherTypeIPv4:
		rest, err = p.decodeIPv4(rest)
	case EtherTypeIPv6:
		rest, err = p.decodeIPv6(rest)
	default:
		p.Payload = rest
		return nil
	}
	if err != nil {
		return err
	}
	// Non-first IPv4 fragments carry no transport header.
	if p.Has(LayerIPv4) && p.IP4.FragOffset != 0 {
		p.Payload = rest
		return nil
	}
	switch p.Protocol() {
	case ProtoTCP:
		rest, err = p.decodeTCP(rest)
	case ProtoUDP:
		rest, err = p.decodeUDP(rest)
	case ProtoICMP, ProtoICMPv6:
		rest, err = p.decodeICMP(rest)
	default:
		p.Payload = rest
		return nil
	}
	if err != nil {
		return err
	}
	p.Payload = rest
	return nil
}

func (p *Packet) decodeEthernet(data []byte) ([]byte, error) {
	if len(data) < 14 {
		return nil, fmt.Errorf("ethernet header: %d bytes: %w", len(data), ErrTruncated)
	}
	copy(p.Eth.DstMAC[:], data[0:6])
	copy(p.Eth.SrcMAC[:], data[6:12])
	et := EtherType(binary.BigEndian.Uint16(data[12:14]))
	rest := data[14:]
	p.Eth.HasVLAN = false
	p.Eth.VLAN = 0
	if et == EtherTypeVLAN {
		if len(rest) < 4 {
			return nil, fmt.Errorf("802.1Q tag: %w", ErrTruncated)
		}
		p.Eth.HasVLAN = true
		p.Eth.VLAN = binary.BigEndian.Uint16(rest[0:2]) & 0x0fff
		et = EtherType(binary.BigEndian.Uint16(rest[2:4]))
		rest = rest[4:]
	}
	p.Eth.EtherType = et
	p.Layers |= LayerEthernet
	return rest, nil
}

func (p *Packet) decodeIPv4(data []byte) ([]byte, error) {
	if len(data) < 20 {
		return nil, fmt.Errorf("ipv4 header: %w", ErrTruncated)
	}
	if v := data[0] >> 4; v != 4 {
		return nil, fmt.Errorf("ipv4 version %d: %w", v, ErrUnsupported)
	}
	h := &p.IP4
	h.IHL = data[0] & 0x0f
	if h.IHL < 5 {
		return nil, fmt.Errorf("ipv4 IHL %d: %w", h.IHL, ErrTruncated)
	}
	hdrLen := int(h.IHL) * 4
	if len(data) < hdrLen {
		return nil, fmt.Errorf("ipv4 options: %w", ErrTruncated)
	}
	h.TOS = data[1]
	h.TotalLength = binary.BigEndian.Uint16(data[2:4])
	h.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	h.Flags = uint8(ff >> 13)
	h.FragOffset = ff & 0x1fff
	h.TTL = data[8]
	h.Protocol = IPProtocol(data[9])
	h.Checksum = binary.BigEndian.Uint16(data[10:12])
	copy(h.SrcIP[:], data[12:16])
	copy(h.DstIP[:], data[16:20])
	p.Layers |= LayerIPv4
	return data[hdrLen:], nil
}

func (p *Packet) decodeIPv6(data []byte) ([]byte, error) {
	if len(data) < 40 {
		return nil, fmt.Errorf("ipv6 header: %w", ErrTruncated)
	}
	if v := data[0] >> 4; v != 6 {
		return nil, fmt.Errorf("ipv6 version %d: %w", v, ErrUnsupported)
	}
	h := &p.IP6
	h.TrafficClass = data[0]<<4 | data[1]>>4
	h.FlowLabel = binary.BigEndian.Uint32(data[0:4]) & 0xfffff
	h.PayloadLength = binary.BigEndian.Uint16(data[4:6])
	h.NextHeader = IPProtocol(data[6])
	h.HopLimit = data[7]
	copy(h.SrcIP[:], data[8:24])
	copy(h.DstIP[:], data[24:40])
	p.Layers |= LayerIPv6
	return data[40:], nil
}

func (p *Packet) decodeTCP(data []byte) ([]byte, error) {
	if len(data) < 20 {
		return nil, fmt.Errorf("tcp header: %w", ErrTruncated)
	}
	h := &p.TCP
	h.SrcPort = binary.BigEndian.Uint16(data[0:2])
	h.DstPort = binary.BigEndian.Uint16(data[2:4])
	h.Seq = binary.BigEndian.Uint32(data[4:8])
	h.Ack = binary.BigEndian.Uint32(data[8:12])
	h.DataOffset = data[12] >> 4
	h.Flags = data[13]
	h.Window = binary.BigEndian.Uint16(data[14:16])
	h.Checksum = binary.BigEndian.Uint16(data[16:18])
	h.Urgent = binary.BigEndian.Uint16(data[18:20])
	hdrLen := int(h.DataOffset) * 4
	if hdrLen < 20 || len(data) < hdrLen {
		// Sampled packet headers are routinely cut mid-options; keep the
		// fixed header and treat the remainder as payload.
		p.Layers |= LayerTCP
		return data[20:], nil
	}
	p.Layers |= LayerTCP
	return data[hdrLen:], nil
}

func (p *Packet) decodeUDP(data []byte) ([]byte, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("udp header: %w", ErrTruncated)
	}
	h := &p.UDP
	h.SrcPort = binary.BigEndian.Uint16(data[0:2])
	h.DstPort = binary.BigEndian.Uint16(data[2:4])
	h.Length = binary.BigEndian.Uint16(data[4:6])
	h.Checksum = binary.BigEndian.Uint16(data[6:8])
	p.Layers |= LayerUDP
	return data[8:], nil
}

func (p *Packet) decodeICMP(data []byte) ([]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("icmp header: %w", ErrTruncated)
	}
	p.ICMP.Type = data[0]
	p.ICMP.Code = data[1]
	p.ICMP.Checksum = binary.BigEndian.Uint16(data[2:4])
	p.Layers |= LayerICMP
	return data[4:], nil
}
