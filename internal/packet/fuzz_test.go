package packet

import "testing"

func FuzzDecode(f *testing.F) {
	var b Builder
	b.Ethernet(macB, macA, EtherTypeIPv4, 0).
		IPv4([4]byte{192, 0, 2, 1}, [4]byte{198, 51, 100, 7}, ProtoUDP, 128, IPv4Opts{}).
		UDP(123, 4444, 108).Payload(100)
	f.Add(append([]byte(nil), b.Bytes()...))
	b.Reset()
	b.Ethernet(macB, macA, EtherTypeIPv6, 1000).
		IPv6([16]byte{0x20, 0x01}, [16]byte{0x20, 0x02}, ProtoTCP, 20, 64).
		TCP(443, 50000, 1, 2, FlagSYN, 1024)
	f.Add(append([]byte(nil), b.Bytes()...))
	f.Fuzz(func(t *testing.T, data []byte) {
		var p Packet
		_ = p.Decode(data) // must never panic
	})
}
